/**
 * @file
 * RAS x sharding acceptance tests: with the error model active (nonzero
 * transient rate, retries, patrol scrub) every scheduler must stay
 * *bit-identical* between the serial loop and the channel-sharded engine —
 * same stats bytes, same trace bytes, same stop cycle.  Error recovery is
 * the hardest case for the lookahead window: a failed read leaves service
 * and re-issues after a backoff hold, so its completion is published in a
 * later window than its first attempt.
 *
 * Also covers the window recomputation (satellite: the lookahead bound is
 * derived from the active TimingParams, not the baseline constants).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/controller.hh"
#include "mem/ras.hh"
#include "sched/factory.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = 20.0;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

struct Artifacts {
    std::string stats;
    std::string trace;
    CpuCycle stop = 0;
    bool sharded = false;
    std::uint64_t ecc_events = 0; ///< corrected + uncorrectable + scrubs.
    std::uint64_t retries = 0;
};

Artifacts
RunSystem(const SystemConfig& config, std::uint32_t cores, CpuCycle cycles)
{
    System system(config, SyntheticTraces(config, cores));
    system.Run(cycles);
    Artifacts out;
    out.stop = system.now();
    out.sharded = system.sharded();
    for (std::uint32_t ch = 0; ch < config.geometry.channels; ++ch) {
        if (const RasEngine* ras = system.controller(ch).ras()) {
            const RasStats& stats = ras->stats();
            out.ecc_events += stats.corrected + stats.uncorrectable +
                              stats.scrub_reads;
            out.retries += stats.retries;
        }
    }
    std::ostringstream stats;
    system.DumpStats(stats);
    out.stats = stats.str();
    if (system.observability() != nullptr) {
        std::ostringstream trace;
        system.WriteTrace(trace, "ras-sharded-equivalence");
        out.trace = trace.str();
    }
    return out;
}

/** Traced config with an aggressive (but machine-check-free) error model:
 *  plenty of corrected reads, uncorrectable reads, retries, and scrub
 *  traffic, but no stuck rows, so no retirement cascade can exhaust the
 *  remap table mid-test. */
SystemConfig
RasConfigFor(std::uint32_t cores, const SchedulerConfig& scheduler,
             unsigned channel_jobs)
{
    SystemConfig config = SystemConfig::Baseline(cores);
    config.scheduler = scheduler;
    config.channel_jobs = channel_jobs;
    config.observability.trace = true;
    config.observability.sample_interval = 256;
    config.controller.ras.enabled = true;
    config.controller.ras.transient_error_rate = 0.02;
    config.controller.ras.transient_uncorrectable = 0.3;
    config.controller.ras.scrub_interval = 512;
    return config;
}

class RasShardedEquivalence
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RasShardedEquivalence, ErrorRecoveryIsBitIdenticalAcrossWorkers)
{
    const SchedulerConfig scheduler = ComparisonSchedulers()[GetParam()];
    constexpr std::uint32_t kCores = 16; // Baseline(16) has 4 channels.
    constexpr CpuCycle kCycles = 60000;

    const Artifacts serial =
        RunSystem(RasConfigFor(kCores, scheduler, 1), kCores, kCycles);
    ASSERT_FALSE(serial.sharded);
    // The scenario must actually exercise recovery, or the equivalence
    // claim is vacuous.
    EXPECT_GT(serial.ecc_events, 0u);
    EXPECT_GT(serial.retries, 0u);
    for (const unsigned jobs : {2u, 4u}) {
        const Artifacts sharded = RunSystem(
            RasConfigFor(kCores, scheduler, jobs), kCores, kCycles);
        ASSERT_TRUE(sharded.sharded) << "jobs=" << jobs;
        EXPECT_EQ(serial.stop, sharded.stop) << "jobs=" << jobs;
        EXPECT_EQ(serial.ecc_events, sharded.ecc_events) << "jobs=" << jobs;
        EXPECT_EQ(serial.retries, sharded.retries) << "jobs=" << jobs;
        EXPECT_EQ(serial.stats, sharded.stats) << "jobs=" << jobs;
        EXPECT_EQ(serial.trace, sharded.trace) << "jobs=" << jobs;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, RasShardedEquivalence,
    ::testing::Range<std::size_t>(0, 6),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name =
            SchedulerConfigName(ComparisonSchedulers()[info.param]);
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(LookaheadWindow, TracksShortenedReadBurstTiming)
{
    // With tCL + tBURST below the notification bound the burst latency
    // becomes the binding constraint; the window must be recomputed from
    // the active TimingParams, not the baseline constants.
    SystemConfig config = SystemConfig::Baseline(16);
    config.channel_jobs = 4;
    config.timing.tCL = 2;
    config.timing.tBURST = 2;
    System system(config, SyntheticTraces(config, 16));
    ASSERT_TRUE(system.sharded());
    const DramCycle expected = std::min<DramCycle>(
        {config.extra_read_latency_cpu / config.cpu_to_dram_ratio,
         config.timing.tCL + config.timing.tBURST,
         config.timing.tCWD + config.timing.tBURST});
    EXPECT_EQ(expected, 4u); // the shortened read burst, not notify (6).
    EXPECT_EQ(system.lookahead_window(), expected);
}

TEST(LookaheadWindow, ShortenedTimingShardedRunStaysIdentical)
{
    // Regression for the window recomputation: with a cross-boundary read
    // latency shorter than the baseline bound, a stale window constant
    // would let cores run ahead of completions and silently diverge.
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    auto config = [&](unsigned jobs) {
        SystemConfig out = SystemConfig::Baseline(16);
        out.scheduler = scheduler;
        out.channel_jobs = jobs;
        out.observability.trace = true;
        out.observability.sample_interval = 256;
        out.timing.tCL = 2;
        out.timing.tBURST = 2;
        return out;
    };
    const Artifacts serial = RunSystem(config(1), 16, 50000);
    const Artifacts sharded = RunSystem(config(4), 16, 50000);
    ASSERT_TRUE(sharded.sharded);
    EXPECT_EQ(serial.stop, sharded.stop);
    EXPECT_EQ(serial.stats, sharded.stats);
    EXPECT_EQ(serial.trace, sharded.trace);
}

} // namespace
} // namespace parbs
