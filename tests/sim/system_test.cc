/** @file Integration tests for the full CMP system and experiment runner. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

TEST(System, BaselineConfigsScaleChannels)
{
    EXPECT_EQ(SystemConfig::Baseline(4).geometry.channels, 1u);
    EXPECT_EQ(SystemConfig::Baseline(8).geometry.channels, 2u);
    EXPECT_EQ(SystemConfig::Baseline(16).geometry.channels, 4u);
}

TEST(System, RunsAndMeasures)
{
    SystemConfig config = SystemConfig::Baseline(4);
    System system(config, SyntheticTraces(config, 4));
    system.Run(200000);
    EXPECT_EQ(system.num_cores(), 4u);
    for (ThreadId t = 0; t < 4; ++t) {
        const ThreadMeasurement m = system.Measure(t);
        EXPECT_GT(m.requests, 100u) << "thread " << t;
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_GT(m.row_hit_rate, 0.0);
        EXPECT_GT(m.blp, 0.9);
        EXPECT_GT(m.worst_case_latency, 0u);
    }
}

TEST(System, DeterministicAcrossRuns)
{
    auto measure = [] {
        SystemConfig config = SystemConfig::Baseline(4);
        config.scheduler.kind = SchedulerKind::kParBs;
        System system(config, SyntheticTraces(config, 4));
        system.Run(100000);
        std::vector<std::uint64_t> out;
        for (ThreadId t = 0; t < 4; ++t) {
            const ThreadMeasurement m = system.Measure(t);
            out.push_back(m.requests);
            out.push_back(m.instructions);
            out.push_back(m.worst_case_latency);
        }
        return out;
    };
    EXPECT_EQ(measure(), measure());
}

TEST(System, FiniteTracesDrainToDone)
{
    SystemConfig config = SystemConfig::Baseline(4);
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 10; ++i) {
        entries.push_back({10, static_cast<Addr>(0x1000 + 64 * i), false,
                           false});
    }
    traces.push_back(std::make_unique<VectorTraceSource>(entries));
    System system(config, std::move(traces));
    system.Run(1'000'000);
    EXPECT_TRUE(system.AllDone());
    EXPECT_EQ(system.Measure(0).requests, 10u);
}

TEST(System, MultiChannelRoutesRequests)
{
    SystemConfig config = SystemConfig::Baseline(8);
    System system(config, SyntheticTraces(config, 8));
    system.Run(100000);
    EXPECT_EQ(system.num_controllers(), 2u);
    std::uint64_t total0 = 0;
    std::uint64_t total1 = 0;
    for (ThreadId t = 0; t < 8; ++t) {
        total0 += system.controller(0).thread_stats(t).reads_completed;
        total1 += system.controller(1).thread_stats(t).reads_completed;
    }
    EXPECT_GT(total0, 100u);
    EXPECT_GT(total1, 100u);
}

TEST(System, ExtraReadLatencyDelaysCompletion)
{
    SystemConfig fast = SystemConfig::Baseline(4);
    fast.extra_read_latency_cpu = 0;
    SystemConfig slow = SystemConfig::Baseline(4);
    slow.extra_read_latency_cpu = 300;

    auto run = [](const SystemConfig& config) {
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(std::make_unique<VectorTraceSource>(
            std::vector<TraceEntry>{{0, 0x1000, false, false}}));
        System system(config, std::move(traces));
        system.Run(1'000'000);
        return system.core(0).stats().load_stall_cycles;
    };
    EXPECT_GE(run(slow), run(fast) + 290);
}

TEST(System, TooManyTracesRejected)
{
    SystemConfig config = SystemConfig::Baseline(4);
    EXPECT_THROW(System(config, SyntheticTraces(config, 5)), ConfigError);
}

TEST(System, InvalidConfigRejected)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.cpu_to_dram_ratio = 0;
    EXPECT_THROW(config.Validate(), ConfigError);
    SystemConfig config2 = SystemConfig::Baseline(4);
    config2.num_cores = 0;
    EXPECT_THROW(config2.Validate(), ConfigError);
    EXPECT_THROW(SystemConfig::Baseline(0), ConfigError);
}

TEST(System, DumpStatsReportsEverySubsystem)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = SchedulerKind::kParBs;
    System system(config, SyntheticTraces(config, 2));
    system.Run(50000);
    std::ostringstream out;
    system.DumpStats(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("core[0]"), std::string::npos);
    EXPECT_NE(text.find("core[1]"), std::string::npos);
    EXPECT_NE(text.find("controller[0]"), std::string::npos);
    EXPECT_NE(text.find("PAR-BS"), std::string::npos);
    EXPECT_NE(text.find("batches_formed"), std::string::npos);
    EXPECT_NE(text.find("ACT="), std::string::npos);
}

TEST(Experiment, AloneBaselineIsCached)
{
    ExperimentConfig config;
    config.run_cycles = 50000;
    ExperimentRunner runner(config);
    const ThreadMeasurement& a = runner.AloneBaseline("429.mcf");
    const ThreadMeasurement& b = runner.AloneBaseline("429.mcf");
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.requests, 0u);
}

TEST(Experiment, SharedRunProducesMetrics)
{
    ExperimentConfig config;
    config.run_cycles = 100000;
    ExperimentRunner runner(config);
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    const SharedRun run = runner.RunShared(CaseStudy1(), scheduler);
    EXPECT_EQ(run.shared.size(), 4u);
    EXPECT_EQ(run.alone.size(), 4u);
    EXPECT_GE(run.metrics.unfairness, 1.0);
    EXPECT_GT(run.metrics.weighted_speedup, 0.0);
    EXPECT_EQ(run.scheduler, "PAR-BS");
    for (double slowdown : run.metrics.memory_slowdown) {
        EXPECT_GE(slowdown, 1.0);
    }
}

TEST(Experiment, PrioritiesAndWeightsAreApplied)
{
    ExperimentConfig config;
    config.run_cycles = 100000;
    ExperimentRunner runner(config);
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    const std::vector<ThreadPriority> priorities{1, 1, 2, 8};
    EXPECT_NO_THROW(
        runner.RunShared(Copies("470.lbm", 4), scheduler, &priorities));
    SchedulerConfig nfq;
    nfq.kind = SchedulerKind::kNfq;
    const std::vector<double> weights{8, 8, 4, 1};
    EXPECT_NO_THROW(
        runner.RunShared(Copies("470.lbm", 4), nfq, nullptr, &weights));
}

TEST(Experiment, AggregateComputesGmeans)
{
    ExperimentConfig config;
    config.run_cycles = 60000;
    ExperimentRunner runner(config);
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kFrFcfs;
    std::vector<SharedRun> runs;
    for (const auto& workload : RandomMixes(3, 4, 9)) {
        runs.push_back(runner.RunShared(workload, scheduler));
    }
    const AggregateMetrics agg = ExperimentRunner::Aggregate(runs);
    EXPECT_GE(agg.unfairness_gmean, 1.0);
    EXPECT_GT(agg.weighted_speedup_gmean, 0.0);
    EXPECT_GT(agg.hmean_speedup_gmean, 0.0);
}

TEST(Experiment, ComparisonSchedulersMatchPaperLineup)
{
    const auto lineup = ComparisonSchedulers();
    ASSERT_EQ(lineup.size(), 6u);
    EXPECT_EQ(SchedulerConfigName(lineup[0]), "FR-FCFS");
    EXPECT_EQ(SchedulerConfigName(lineup[1]), "FCFS");
    EXPECT_EQ(SchedulerConfigName(lineup[2]), "NFQ");
    EXPECT_EQ(SchedulerConfigName(lineup[3]), "STFM");
    EXPECT_EQ(SchedulerConfigName(lineup[4]), "PAR-BS");
    // The paper's five plus the BLISS foil (the Pareto shootout lineup).
    EXPECT_EQ(SchedulerConfigName(lineup[5]), "BLISS");
}

TEST(Workloads, NamedWorkloadsMatchPaper)
{
    EXPECT_EQ(CaseStudy1().benchmarks,
              (std::vector<std::string>{"462.libquantum", "429.mcf",
                                        "459.GemsFDTD", "483.xalancbmk"}));
    EXPECT_EQ(CaseStudy2().benchmarks,
              (std::vector<std::string>{"matlab", "464.h264ref",
                                        "471.omnetpp", "456.hmmer"}));
    EXPECT_EQ(CaseStudy3().benchmarks.size(), 4u);
    EXPECT_EQ(EightCoreMixed().benchmarks.size(), 8u);
    EXPECT_EQ(Fig8SampleWorkloads().size(), 10u);
}

TEST(Workloads, SixteenCoreSamplesAreComplete)
{
    const auto samples = SixteenCoreSamples();
    ASSERT_EQ(samples.size(), 5u);
    for (const auto& sample : samples) {
        EXPECT_EQ(sample.benchmarks.size(), 16u) << sample.name;
        for (const auto& benchmark : sample.benchmarks) {
            EXPECT_NO_THROW(FindProfile(benchmark)) << benchmark;
        }
    }
}

TEST(Workloads, RandomMixesAreDeterministicAndValid)
{
    const auto a = RandomMixes(10, 4, 42);
    const auto b = RandomMixes(10, 4, 42);
    ASSERT_EQ(a.size(), 10u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
        EXPECT_EQ(a[i].benchmarks.size(), 4u);
    }
    const auto c = RandomMixes(10, 4, 43);
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_different |= a[i].benchmarks != c[i].benchmarks;
    }
    EXPECT_TRUE(any_different);
}

TEST(Workloads, SixteenCoreMixesCoverCategoriesTwice)
{
    const auto mixes = RandomMixes(3, 16, 7);
    for (const auto& mix : mixes) {
        std::vector<int> counts(8, 0);
        for (const auto& benchmark : mix.benchmarks) {
            counts[FindProfile(benchmark).category] += 1;
        }
        for (int category = 0; category < 8; ++category) {
            EXPECT_EQ(counts[category], 2) << mix.name;
        }
    }
}

} // namespace
} // namespace parbs
