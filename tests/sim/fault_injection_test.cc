/** @file Tests for the deterministic fault-injection harness. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/factory.hh"
#include "sim/fault_injector.hh"

namespace parbs {
namespace {

TEST(FaultInjector, ExpectedDefensePerFamily)
{
    using enum FaultKind;
    EXPECT_EQ(FaultInjector::ExpectedDefense(kMalformedTrace),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kOutOfRangeAddress),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadTiming),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadGeometry),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadControllerConfig),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kRefreshStorm), Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kWritePressure),
              Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kSchedulerChaos),
              Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kTimingCorruption),
              Defense::kProtocolError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kServiceWithholding),
              Defense::kWatchdogError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kTransientBitErrors),
              Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kStuckRow),
              Defense::kMachineCheck);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kScrubStorm), Defense::kNone);
}

TEST(FaultInjector, ScenariosAreDeterministic)
{
    FaultInjector a(0xFA11);
    FaultInjector b(0xFA11);
    for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
        const FaultOutcome first = a.RunScenario(index);
        const FaultOutcome second = b.RunScenario(index);
        EXPECT_EQ(first.observed, second.observed) << "index " << index;
        EXPECT_EQ(first.detail, second.detail) << "index " << index;
    }
}

TEST(FaultInjector, EveryFamilyIsDefendedAsExpected)
{
    // Three full rotations through every family (the CI fuzz run covers
    // far more; this keeps the tier-1 suite fast but representative).
    FaultInjector injector(0xFA11);
    for (std::uint64_t index = 0; index < 3 * kNumFaultKinds; ++index) {
        const FaultOutcome outcome = injector.RunScenario(index);
        EXPECT_TRUE(outcome.Passed())
            << "index " << index << " (" << FaultKindName(outcome.kind)
            << "): expected " << DefenseName(outcome.expected)
            << ", observed " << DefenseName(outcome.observed) << "\n  "
            << outcome.detail;
    }
}

TEST(FaultInjector, ASecondSeedAlsoPasses)
{
    FaultInjector injector(0xC0FFEE);
    for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
        const FaultOutcome outcome = injector.RunScenario(index);
        EXPECT_TRUE(outcome.Passed())
            << "index " << index << " (" << FaultKindName(outcome.kind)
            << "): observed " << DefenseName(outcome.observed) << "\n  "
            << outcome.detail;
    }
}

TEST(FaultInjector, DefensesAreInvariantUnderSchedulerAndSharding)
{
    // The scenario matrix replayed under a different scheduler and under
    // the channel-sharded engine must classify every fault identically to
    // the serial FR-FCFS baseline: defenses are a property of the fault,
    // not of the scheduling policy or the worker count.
    FaultInjector injector(0xFA11);
    std::vector<FaultOutcome> baseline;
    for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
        baseline.push_back(injector.RunScenario(index));
    }
    // Enumerate from the factory registry so a newly registered policy
    // is replayed automatically (the FR-FCFS entry harmlessly re-checks
    // the baseline under sharding).
    for (const SchedulerKind scheduler : AllSchedulerKinds()) {
        FaultOptions options;
        options.scheduler = scheduler;
        options.channel_jobs = 4;
        for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
            const FaultOutcome outcome =
                injector.RunScenario(index, options);
            EXPECT_TRUE(outcome.Passed())
                << "index " << index << " scheduler "
                << SchedulerKindName(scheduler) << ": observed "
                << DefenseName(outcome.observed) << "\n  "
                << outcome.detail;
            EXPECT_EQ(outcome.observed, baseline[index].observed)
                << "index " << index << " under "
                << SchedulerKindName(scheduler)
                << " --channel-jobs 4 diverged from the serial baseline";
        }
    }
}

TEST(FaultInjector, UserFaultDetailNamesTheProblem)
{
    // The rejection message must carry context, not just a type.
    FaultInjector injector(0xFA11);
    const FaultOutcome outcome =
        injector.RunScenario(static_cast<std::uint64_t>(
            FaultKind::kMalformedTrace));
    ASSERT_EQ(outcome.observed, Defense::kConfigError);
    EXPECT_NE(outcome.detail.find("trace"), std::string::npos)
        << outcome.detail;
}

} // namespace
} // namespace parbs
