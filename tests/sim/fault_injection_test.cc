/** @file Tests for the deterministic fault-injection harness. */

#include <gtest/gtest.h>

#include <string>

#include "sim/fault_injector.hh"

namespace parbs {
namespace {

TEST(FaultInjector, ExpectedDefensePerFamily)
{
    using enum FaultKind;
    EXPECT_EQ(FaultInjector::ExpectedDefense(kMalformedTrace),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kOutOfRangeAddress),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadTiming),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadGeometry),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kBadControllerConfig),
              Defense::kConfigError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kRefreshStorm), Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kWritePressure),
              Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kSchedulerChaos),
              Defense::kNone);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kTimingCorruption),
              Defense::kProtocolError);
    EXPECT_EQ(FaultInjector::ExpectedDefense(kServiceWithholding),
              Defense::kWatchdogError);
}

TEST(FaultInjector, ScenariosAreDeterministic)
{
    FaultInjector a(0xFA11);
    FaultInjector b(0xFA11);
    for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
        const FaultOutcome first = a.RunScenario(index);
        const FaultOutcome second = b.RunScenario(index);
        EXPECT_EQ(first.observed, second.observed) << "index " << index;
        EXPECT_EQ(first.detail, second.detail) << "index " << index;
    }
}

TEST(FaultInjector, EveryFamilyIsDefendedAsExpected)
{
    // Three full rotations through the ten families (the CI fuzz run covers
    // far more; this keeps the tier-1 suite fast but representative).
    FaultInjector injector(0xFA11);
    for (std::uint64_t index = 0; index < 3 * kNumFaultKinds; ++index) {
        const FaultOutcome outcome = injector.RunScenario(index);
        EXPECT_TRUE(outcome.Passed())
            << "index " << index << " (" << FaultKindName(outcome.kind)
            << "): expected " << DefenseName(outcome.expected)
            << ", observed " << DefenseName(outcome.observed) << "\n  "
            << outcome.detail;
    }
}

TEST(FaultInjector, ASecondSeedAlsoPasses)
{
    FaultInjector injector(0xC0FFEE);
    for (std::uint64_t index = 0; index < kNumFaultKinds; ++index) {
        const FaultOutcome outcome = injector.RunScenario(index);
        EXPECT_TRUE(outcome.Passed())
            << "index " << index << " (" << FaultKindName(outcome.kind)
            << "): observed " << DefenseName(outcome.observed) << "\n  "
            << outcome.detail;
    }
}

TEST(FaultInjector, UserFaultDetailNamesTheProblem)
{
    // The rejection message must carry context, not just a type.
    FaultInjector injector(0xFA11);
    const FaultOutcome outcome =
        injector.RunScenario(static_cast<std::uint64_t>(
            FaultKind::kMalformedTrace));
    ASSERT_EQ(outcome.observed, Defense::kConfigError);
    EXPECT_NE(outcome.detail.find("trace"), std::string::npos)
        << outcome.detail;
}

} // namespace
} // namespace parbs
