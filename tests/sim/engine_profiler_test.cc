/**
 * @file
 * Engine flight-recorder tests (DESIGN.md §5h).  The profiler's contract
 * splits in two: the deterministic counters (window schedule, arrival
 * imbalance, occupancy, pick-memo rates) must be byte-identical across
 * every engine shape — serial loop, channel shards, explicit core crews —
 * while the wall-clock phase timings are volatile and live only on the
 * env side.  Turning the profiler on must never perturb the simulation
 * itself, and the engine state dump must describe whichever engine is
 * running.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sched/factory.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

SystemConfig
ProfiledConfig(std::uint32_t cores, const SchedulerConfig& scheduler,
               unsigned channel_jobs)
{
    SystemConfig config = SystemConfig::Baseline(cores);
    config.scheduler = scheduler;
    config.channel_jobs = channel_jobs;
    config.observability.engine_profile = true;
    return config;
}

struct ProfiledArtifacts {
    std::string stats;
    std::string engine_run; ///< EngineRunJson().Dump(2) — deterministic.
    CpuCycle stop = 0;
    bool sharded = false;
    unsigned core_crew = 1;
};

ProfiledArtifacts
RunProfiled(const SystemConfig& config, std::uint32_t cores,
            CpuCycle cycles)
{
    System system(config, SyntheticTraces(config, cores));
    system.Run(cycles);
    ProfiledArtifacts out;
    out.stop = system.now();
    out.sharded = system.sharded();
    out.core_crew = system.core_crew();
    std::ostringstream stats;
    system.DumpStats(stats);
    out.stats = stats.str();
    out.engine_run = system.EngineRunJson().Dump(2);
    return out;
}

class EngineCounterDeterminism
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineCounterDeterminism, ByteIdenticalAcrossEngineShapes)
{
    const SchedulerConfig scheduler = ComparisonSchedulers()[GetParam()];
    constexpr std::uint32_t kCores = 64; // Baseline(64) has 16 channels.
    constexpr CpuCycle kCycles = 25000;

    // Serial reference: channel_jobs 1 keeps the serial cycle loop, which
    // replays the sharded window schedule purely for accounting.
    const ProfiledArtifacts serial = RunProfiled(
        ProfiledConfig(kCores, scheduler, 1), kCores, kCycles);
    ASSERT_FALSE(serial.sharded);

    // Channel shards at two crew sizes (auto core crew engages at 64
    // cores), plus one explicitly narrowed core crew: every shape must
    // reproduce the serial counters byte for byte.
    for (const unsigned jobs : {4u, 8u}) {
        const ProfiledArtifacts sharded = RunProfiled(
            ProfiledConfig(kCores, scheduler, jobs), kCores, kCycles);
        ASSERT_TRUE(sharded.sharded) << "jobs=" << jobs;
        ASSERT_EQ(sharded.core_crew, jobs) << "jobs=" << jobs;
        EXPECT_EQ(serial.stop, sharded.stop) << "jobs=" << jobs;
        EXPECT_EQ(serial.stats, sharded.stats) << "jobs=" << jobs;
        EXPECT_EQ(serial.engine_run, sharded.engine_run)
            << "jobs=" << jobs;
    }
    {
        SystemConfig config = ProfiledConfig(kCores, scheduler, 4);
        config.core_jobs = 2;
        const ProfiledArtifacts narrow =
            RunProfiled(config, kCores, kCycles);
        ASSERT_TRUE(narrow.sharded);
        ASSERT_EQ(narrow.core_crew, 2u);
        EXPECT_EQ(serial.stop, narrow.stop);
        EXPECT_EQ(serial.stats, narrow.stats);
        EXPECT_EQ(serial.engine_run, narrow.engine_run);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, EngineCounterDeterminism,
    ::testing::Range<std::size_t>(0, 6),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name =
            SchedulerConfigName(ComparisonSchedulers()[info.param]);
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });

TEST(EngineProfiler, ProfilerOnNeverPerturbsTheSimulation)
{
    // The profiler must be observation-free: the same run with the flight
    // recorder on and off produces the same stats bytes, serial and
    // sharded.
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    constexpr CpuCycle kCycles = 60000;
    auto stats_of = [&](unsigned channel_jobs, bool profile) {
        SystemConfig config = SystemConfig::Baseline(16);
        config.scheduler = scheduler;
        config.channel_jobs = channel_jobs;
        config.observability.engine_profile = profile;
        System system(config, SyntheticTraces(config, 16));
        system.Run(kCycles);
        std::ostringstream stats;
        system.DumpStats(stats);
        return stats.str();
    };
    const std::string baseline = stats_of(1, false);
    EXPECT_EQ(baseline, stats_of(1, true));
    EXPECT_EQ(baseline, stats_of(4, false));
    EXPECT_EQ(baseline, stats_of(4, true));
}

TEST(EngineProfiler, DeterministicJsonCarriesTheWindowSchedule)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kFrFcfs;
    SystemConfig config = ProfiledConfig(16, scheduler, 4);
    System system(config, SyntheticTraces(config, 16));
    system.Run(50000);
    ASSERT_NE(system.engine_profiler(), nullptr);

    const json::Value run = system.EngineRunJson();
    const json::Value* windows = run.Find("windows");
    ASSERT_NE(windows, nullptr);
    EXPECT_GT(windows->AsNumber(), 0.0);
    const json::Value* arrivals = run.Find("arrivals");
    ASSERT_NE(arrivals, nullptr);
    EXPECT_GT(arrivals->AsNumber(), 0.0);
    ASSERT_NE(run.Find("window_ticks"), nullptr);
    ASSERT_NE(run.Find("arrival_imbalance"), nullptr);
    ASSERT_NE(run.Find("occupancy"), nullptr);
    const json::Value* memo = run.Find("pick_memo");
    ASSERT_NE(memo, nullptr);
    ASSERT_NE(memo->Find("hits"), nullptr);
    ASSERT_NE(memo->Find("misses"), nullptr);
    ASSERT_NE(memo->Find("invalidations"), nullptr);
    const json::Value* channels = run.Find("channels");
    ASSERT_NE(channels, nullptr);
    EXPECT_EQ(channels->items().size(), config.geometry.channels);

    const json::Value env = system.EngineEnvJson();
    const json::Value* clock = env.Find("clock");
    ASSERT_NE(clock, nullptr);
    ASSERT_NE(clock->Find("source"), nullptr);
    const json::Value* participants = env.Find("participants");
    ASSERT_NE(participants, nullptr);
    EXPECT_EQ(participants->AsNumber(), 4.0);
    const json::Value* hiwater = env.Find("pool_hiwater");
    ASSERT_NE(hiwater, nullptr);
    EXPECT_EQ(hiwater->items().size(), config.geometry.channels);
}

TEST(EngineProfiler, TraceGainsEngineLanesOnlyWhenProfiled)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kParBs;
    auto trace_of = [&](bool profile) {
        SystemConfig config = SystemConfig::Baseline(16);
        config.scheduler = scheduler;
        config.channel_jobs = 4;
        config.observability.trace = true;
        config.observability.sample_interval = 512;
        config.observability.engine_profile = profile;
        System system(config, SyntheticTraces(config, 16));
        system.Run(30000);
        std::ostringstream out;
        system.WriteTrace(out, "engine-lanes");
        return out.str();
    };
    const std::string plain = trace_of(false);
    EXPECT_EQ(plain.find("\"engine_profile\""), std::string::npos);
    EXPECT_EQ(plain.find("\"cat\": \"engine\""), std::string::npos);
    const std::string profiled = trace_of(true);
    EXPECT_NE(profiled.find("\"engine_profile\": true"),
              std::string::npos);
    EXPECT_NE(profiled.find("\"cat\": \"engine\""), std::string::npos);
    EXPECT_NE(profiled.find("participant 0 (coordinator)"),
              std::string::npos);
}

TEST(EngineProfiler, EngineStateDumpDescribesBothEngines)
{
    SchedulerConfig scheduler;
    scheduler.kind = SchedulerKind::kFrFcfs;
    {
        SystemConfig config = ProfiledConfig(16, scheduler, 4);
        System system(config, SyntheticTraces(config, 16));
        system.Run(20000);
        const std::string dump = system.EngineStateDump();
        EXPECT_NE(dump.find("---- engine state ----"), std::string::npos);
        EXPECT_NE(dump.find("engine=sharded"), std::string::npos);
        EXPECT_NE(dump.find("shard[0]"), std::string::npos);
        EXPECT_NE(dump.find("profiler_phase="), std::string::npos);
    }
    {
        SystemConfig config = SystemConfig::Baseline(4);
        config.scheduler = scheduler;
        config.channel_jobs = 1;
        System system(config, SyntheticTraces(config, 4));
        system.Run(20000);
        const std::string dump = system.EngineStateDump();
        EXPECT_NE(dump.find("engine=serial"), std::string::npos);
    }
}

} // namespace
} // namespace parbs
