/**
 * @file
 * Tests for the work-stealing TaskPool and the bench harness's
 * determinism contract: results and emitted JSON are bit-identical for
 * every --jobs value (DESIGN.md "Parallel runner").
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hh"
#include "common/json.hh"
#include "sim/runner.hh"

namespace parbs {
namespace {

TEST(TaskPool, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(HardwareJobs(), 1u);
    EXPECT_GE(TaskPool(0).jobs(), 1u);
}

TEST(TaskPool, RunsEveryTaskExactlyOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        TaskPool pool(jobs);
        constexpr std::size_t kTasks = 100;
        std::vector<std::atomic<int>> hits(kTasks);
        pool.ParallelFor(kTasks, [&](std::size_t i) { hits[i] += 1; });
        for (std::size_t i = 0; i < kTasks; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
        }
    }
}

TEST(TaskPool, ResultsLandAtSubmissionIndex)
{
    auto compute = [](unsigned jobs) {
        TaskPool pool(jobs);
        std::vector<std::uint64_t> out(257);
        pool.ParallelFor(out.size(), [&](std::size_t i) {
            out[i] = i * i + 7;
        });
        return out;
    };
    EXPECT_EQ(compute(1), compute(4));
    EXPECT_EQ(compute(1), compute(8));
}

TEST(TaskPool, ReusableAcrossBatches)
{
    TaskPool pool(3);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 5; ++batch) {
        pool.ParallelFor(10, [&](std::size_t) { total += 1; });
    }
    EXPECT_EQ(total.load(), 50);
    pool.RunAll({}); // Empty batch is a no-op.
}

TEST(TaskPool, FirstExceptionPropagatesAfterBatchCompletes)
{
    for (unsigned jobs : {1u, 4u}) {
        TaskPool pool(jobs);
        std::atomic<int> ran{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 20; ++i) {
            tasks.push_back([&ran, i] {
                ran += 1;
                if (i % 7 == 3) {
                    throw std::runtime_error("task failed");
                }
            });
        }
        EXPECT_THROW(pool.RunAll(std::move(tasks)), std::runtime_error);
        // The failing task does not cancel the rest of the batch.
        EXPECT_EQ(ran.load(), 20);
        // The pool stays usable after a failed batch.
        std::atomic<int> after{0};
        pool.ParallelFor(4, [&](std::size_t) { after += 1; });
        EXPECT_EQ(after.load(), 4);
    }
}

TEST(TaskPool, IdleWorkersStealFromLoadedOnes)
{
    TaskPool pool(4);
    // Round-robin distribution puts every sleeping task on worker 0; the
    // other three workers' deques hold only no-ops, so they must steal to
    // keep the batch moving.
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
        if (i % 4 == 0) {
            tasks.push_back([] {
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
            });
        } else {
            tasks.push_back([] {});
        }
    }
    pool.RunAll(std::move(tasks));
    EXPECT_GT(pool.steal_count(), 0u);
}

/** Runs a small 4-core workload set through a full bench Session. */
std::string
RunSuiteJson(unsigned jobs, const std::string& path)
{
    std::vector<std::string> args = {
        "runner_test", "--cycles", "100000", "--jobs",
        std::to_string(jobs), "--json", path,
    };
    std::vector<char*> argv;
    for (std::string& arg : args) {
        argv.push_back(arg.data());
    }

    {
        bench::Session session(static_cast<int>(argv.size()), argv.data(),
                               "Runner test", "determinism check");
        ExperimentRunner runner = bench::MakeRunner(session.options(), 4);
        SchedulerConfig frfcfs;
        frfcfs.kind = SchedulerKind::kFrFcfs;
        SchedulerConfig parbs_config;
        parbs_config.kind = SchedulerKind::kParBs;
        const auto matrix =
            bench::RunMatrix(session, runner, {frfcfs, parbs_config},
                             RandomMixes(2, 4, /*seed=*/1));
        for (const auto& runs : matrix) {
            for (const SharedRun& run : runs) {
                session.RecordRun("determinism", run);
            }
        }
    } // ~Session writes the JSON file.

    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(RunnerDeterminism, JsonRunSubtreeIsByteIdenticalAcrossJobs)
{
    const std::string dir = ::testing::TempDir();
    const std::string serial = RunSuiteJson(1, dir + "/runner_j1.json");
    const std::string parallel = RunSuiteJson(8, dir + "/runner_j8.json");
    ASSERT_FALSE(serial.empty());
    ASSERT_FALSE(parallel.empty());

    // The files differ only in the volatile "env" subtree (wall clock,
    // jobs); the deterministic "run" subtree must match byte-for-byte.
    const json::Value a = json::Value::Parse(serial);
    const json::Value b = json::Value::Parse(parallel);
    ASSERT_NE(a.Find("run"), nullptr);
    ASSERT_NE(b.Find("run"), nullptr);
    EXPECT_EQ(a.Find("run")->Dump(2), b.Find("run")->Dump(2));
}

} // namespace
} // namespace parbs
