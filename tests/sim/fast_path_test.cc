/**
 * @file
 * Exactness tests for the controller's next-event fast path: skipping
 * selection scans and retirement checks must never change simulated
 * behavior, and verify mode must confirm that no skipped cycle had a
 * ready command (checked against the protocol checker's shadow model).
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

/** Everything observable about a run that must not depend on fast_path. */
std::vector<std::uint64_t>
Fingerprint(SchedulerKind kind, bool fast_path, double mpki)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = kind;
    config.controller.fast_path = fast_path;
    System system(config, SyntheticTraces(config, 4, mpki));
    system.Run(200000);
    std::vector<std::uint64_t> out;
    for (ThreadId t = 0; t < 4; ++t) {
        const ThreadMeasurement m = system.Measure(t);
        out.push_back(m.requests);
        out.push_back(m.instructions);
        out.push_back(m.worst_case_latency);
        out.push_back(static_cast<std::uint64_t>(m.row_hit_rate * 1e12));
        out.push_back(static_cast<std::uint64_t>(m.blp * 1e12));
    }
    for (std::uint32_t c = 0; c < system.num_controllers(); ++c) {
        const Controller& controller = system.controller(c);
        out.push_back(controller.commands_issued(dram::CommandType::kActivate));
        out.push_back(controller.commands_issued(dram::CommandType::kPrecharge));
        out.push_back(controller.commands_issued(dram::CommandType::kRead));
        out.push_back(controller.commands_issued(dram::CommandType::kWrite));
    }
    return out;
}

class FastPathExactness
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(FastPathExactness, SkipAheadMatchesPerCycleScan)
{
    // High-mpki saturated traffic and low-mpki idle-heavy traffic stress
    // different skip windows (retirement-bound vs arrival-bound).
    for (double mpki : {20.0, 2.0}) {
        EXPECT_EQ(Fingerprint(GetParam(), true, mpki),
                  Fingerprint(GetParam(), false, mpki))
            << "fast path diverged at mpki " << mpki;
    }
}

TEST_P(FastPathExactness, NoReadyCommandEverSkipped)
{
    // verify_fast_path asserts !AnyCommandReady on every skipped cycle;
    // the protocol checker cross-validates every issued command against
    // its shadow timing model.  Both throw/abort on violation.
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = GetParam();
    config.controller.fast_path = true;
    config.controller.verify_fast_path = true;
    config.controller.protocol_check = true;
    System system(config, SyntheticTraces(config, 4));
    system.Run(200000);

    // The run must actually have exercised the skip path.
    std::uint64_t skips = 0;
    for (std::uint32_t c = 0; c < system.num_controllers(); ++c) {
        skips += system.controller(c).fast_path_stats().select_skips;
    }
    EXPECT_GT(skips, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, FastPathExactness,
    ::testing::Values(SchedulerKind::kFrFcfs, SchedulerKind::kFcfs,
                      SchedulerKind::kNfq, SchedulerKind::kStfm,
                      SchedulerKind::kParBs));

} // namespace
} // namespace parbs
