/** @file Tests for the Figure 3 abstract within-batch model — including the
 *  exact reproduction of the paper's completion-time tables. */

#include <gtest/gtest.h>

#include "core/abstract_batch.hh"

namespace parbs::abstract {
namespace {

TEST(Figure3, FcfsCompletionTimesMatchPaper)
{
    const AbstractResult r = ScheduleBatch(Figure3Batch(),
                                           AbstractPolicy::kFcfs);
    ASSERT_EQ(r.completion.size(), 4u);
    EXPECT_DOUBLE_EQ(r.completion[0], 4.0);
    EXPECT_DOUBLE_EQ(r.completion[1], 4.0);
    EXPECT_DOUBLE_EQ(r.completion[2], 5.0);
    EXPECT_DOUBLE_EQ(r.completion[3], 7.0);
    EXPECT_DOUBLE_EQ(r.AverageCompletion(), 5.0);
}

TEST(Figure3, FrFcfsCompletionTimesMatchPaper)
{
    const AbstractResult r = ScheduleBatch(Figure3Batch(),
                                           AbstractPolicy::kFrFcfs);
    EXPECT_DOUBLE_EQ(r.completion[0], 5.5);
    EXPECT_DOUBLE_EQ(r.completion[1], 3.0);
    EXPECT_DOUBLE_EQ(r.completion[2], 4.5);
    EXPECT_DOUBLE_EQ(r.completion[3], 4.5);
    EXPECT_DOUBLE_EQ(r.AverageCompletion(), 4.375);
}

TEST(Figure3, ParBsCompletionTimesMatchPaper)
{
    const AbstractResult r = ScheduleBatch(Figure3Batch(),
                                           AbstractPolicy::kParBs);
    EXPECT_DOUBLE_EQ(r.completion[0], 1.0);
    EXPECT_DOUBLE_EQ(r.completion[1], 2.0);
    EXPECT_DOUBLE_EQ(r.completion[2], 4.0);
    EXPECT_DOUBLE_EQ(r.completion[3], 5.5);
    EXPECT_DOUBLE_EQ(r.AverageCompletion(), 3.125);
}

TEST(Figure3, BatchMatchesPaperDescription)
{
    const AbstractBatch batch = Figure3Batch();
    ASSERT_EQ(batch.num_threads, 4u);
    ASSERT_EQ(batch.banks.size(), 4u);

    std::vector<std::uint32_t> total(4, 0);
    std::vector<std::uint32_t> max_bank(4, 0);
    for (const auto& bank : batch.banks) {
        std::vector<std::uint32_t> here(4, 0);
        for (const auto& request : bank) {
            here[request.thread] += 1;
        }
        for (int t = 0; t < 4; ++t) {
            total[t] += here[t];
            max_bank[t] = std::max(max_bank[t], here[t]);
        }
    }
    // "Thread 1 has only three requests that are all intended for
    // different banks."
    EXPECT_EQ(total[0], 3u);
    EXPECT_EQ(max_bank[0], 1u);
    // "Both Threads 2 and 3 have a max-bank-load of two, but Thread 2 has
    // fewer total number of requests."
    EXPECT_EQ(max_bank[1], 2u);
    EXPECT_EQ(max_bank[2], 2u);
    EXPECT_LT(total[1], total[2]);
    // "Thread 4 is ranked the lowest because it has a max-bank-load of 5."
    EXPECT_EQ(max_bank[3], 5u);
}

TEST(Figure3, MaxTotalRankingMatchesPaper)
{
    const auto rank = MaxTotalRanking(Figure3Batch());
    EXPECT_EQ(rank[0], 0u); // Thread 1 highest.
    EXPECT_EQ(rank[1], 1u); // Thread 2.
    EXPECT_EQ(rank[2], 2u); // Thread 3.
    EXPECT_EQ(rank[3], 3u); // Thread 4 lowest.
}

TEST(AbstractBatch, PolicyOrderingHolds)
{
    // The figure's headline: PAR-BS < FR-FCFS < FCFS in average
    // completion time.
    const AbstractBatch batch = Figure3Batch();
    const double fcfs =
        ScheduleBatch(batch, AbstractPolicy::kFcfs).AverageCompletion();
    const double frfcfs =
        ScheduleBatch(batch, AbstractPolicy::kFrFcfs).AverageCompletion();
    const double parbs =
        ScheduleBatch(batch, AbstractPolicy::kParBs).AverageCompletion();
    EXPECT_LT(parbs, frfcfs);
    EXPECT_LT(frfcfs, fcfs);
}

TEST(AbstractBatch, SingleRequestCostsOneConflict)
{
    AbstractBatch batch;
    batch.num_threads = 1;
    batch.banks = {{{0, 5}}};
    for (AbstractPolicy policy :
         {AbstractPolicy::kFcfs, AbstractPolicy::kFrFcfs,
          AbstractPolicy::kParBs}) {
        const AbstractResult r = ScheduleBatch(batch, policy);
        EXPECT_DOUBLE_EQ(r.completion[0], 1.0);
    }
}

TEST(AbstractBatch, RowHitsCostHalf)
{
    AbstractBatch batch;
    batch.num_threads = 1;
    batch.banks = {{{0, 5}, {0, 5}, {0, 5}}};
    const AbstractResult r = ScheduleBatch(batch, AbstractPolicy::kFcfs);
    EXPECT_DOUBLE_EQ(r.completion[0], 2.0); // 1 + 0.5 + 0.5.
}

TEST(AbstractBatch, CustomLatenciesRespected)
{
    AbstractBatch batch;
    batch.num_threads = 1;
    batch.banks = {{{0, 5}, {0, 5}}};
    const AbstractResult r =
        ScheduleBatch(batch, AbstractPolicy::kFcfs, 10.0, 2.0);
    EXPECT_DOUBLE_EQ(r.completion[0], 12.0);
}

TEST(AbstractBatch, FrFcfsReordersForRowHits)
{
    AbstractBatch batch;
    batch.num_threads = 2;
    // Arrival: t0 row1, t1 row2, t0 row1.  FR-FCFS bundles the row-1 pair.
    batch.banks = {{{0, 1}, {1, 2}, {0, 1}}};
    const AbstractResult fcfs = ScheduleBatch(batch, AbstractPolicy::kFcfs);
    EXPECT_DOUBLE_EQ(fcfs.completion[0], 3.0);
    const AbstractResult fr = ScheduleBatch(batch, AbstractPolicy::kFrFcfs);
    EXPECT_DOUBLE_EQ(fr.completion[0], 1.5);
    EXPECT_DOUBLE_EQ(fr.completion[1], 2.5);
}

TEST(AbstractBatch, BanksProgressInParallel)
{
    AbstractBatch batch;
    batch.num_threads = 2;
    batch.banks = {{{0, 1}}, {{1, 2}}};
    const AbstractResult r = ScheduleBatch(batch, AbstractPolicy::kFcfs);
    // Both complete at time 1: banks are independent timelines.
    EXPECT_DOUBLE_EQ(r.completion[0], 1.0);
    EXPECT_DOUBLE_EQ(r.completion[1], 1.0);
}

TEST(AbstractBatch, ServiceOrderRecorded)
{
    AbstractBatch batch;
    batch.num_threads = 2;
    batch.banks = {{{0, 1}, {1, 2}, {0, 1}}};
    const AbstractResult r = ScheduleBatch(batch, AbstractPolicy::kFrFcfs);
    ASSERT_EQ(r.service_order.size(), 1u);
    EXPECT_EQ(r.service_order[0], (std::vector<std::size_t>{0, 2, 1}));
}

TEST(AbstractBatch, ThreadsWithoutRequestsCompleteAtZero)
{
    AbstractBatch batch;
    batch.num_threads = 3;
    batch.banks = {{{0, 1}}};
    const AbstractResult r = ScheduleBatch(batch, AbstractPolicy::kParBs);
    EXPECT_DOUBLE_EQ(r.completion[1], 0.0);
    EXPECT_DOUBLE_EQ(r.completion[2], 0.0);
    EXPECT_DOUBLE_EQ(r.AverageCompletion(), 1.0);
}

} // namespace
} // namespace parbs::abstract
