/** @file Tests for the Table 1 hardware-cost accounting. */

#include <gtest/gtest.h>

#include "core/hardware_cost.hh"
#include "sched/factory.hh"

namespace parbs {
namespace {

TEST(HardwareCost, PaperReferencePointIs1412Bits)
{
    // "Assuming an 8-core CMP, 128-entry request buffer and 8 DRAM banks,
    // the extra hardware state ... required to implement PAR-BS (beyond
    // FR-FCFS) is 1412 bits."
    const HardwareCostBreakdown cost = ParBsHardwareCost({});
    EXPECT_EQ(cost.TotalBits(), 1412u);
}

TEST(HardwareCost, BreakdownMatchesTableOne)
{
    const HardwareCostBreakdown cost = ParBsHardwareCost({});
    // Per request: Marked (1) + thread-rank (3) + Thread-ID (3) = 7 bits,
    // for 128 entries.
    EXPECT_EQ(cost.per_request_bits, 128u * 7);
    // ReqsInBankPerThread: log2(128) = 7 bits x 8 threads x 8 banks.
    EXPECT_EQ(cost.per_thread_per_bank_bits, 7u * 8 * 8);
    // ReqsPerThread: 7 bits x 8 threads.
    EXPECT_EQ(cost.per_thread_bits, 7u * 8);
    // TotalMarkedRequests (7) + Marking-Cap (5).
    EXPECT_EQ(cost.individual_bits, 12u);
}

TEST(HardwareCost, ScalesWithThreads)
{
    HardwareCostParams params;
    params.num_threads = 16;
    const HardwareCostBreakdown cost = ParBsHardwareCost(params);
    // log2(16) = 4-bit thread ids and ranks.
    EXPECT_EQ(cost.per_request_bits, 128u * (1 + 4 + 4));
    EXPECT_EQ(cost.per_thread_per_bank_bits, 7u * 16 * 8);
}

TEST(HardwareCost, ScalesWithBufferSize)
{
    HardwareCostParams params;
    params.request_buffer_entries = 256;
    const HardwareCostBreakdown cost = ParBsHardwareCost(params);
    // log2(256) = 8-bit counters.
    EXPECT_EQ(cost.per_thread_per_bank_bits, 8u * 8 * 8);
    EXPECT_EQ(cost.individual_bits, 8u + 5);
}

TEST(HardwareCost, CeilLog2)
{
    EXPECT_EQ(CeilLog2(1), 0u);
    EXPECT_EQ(CeilLog2(2), 1u);
    EXPECT_EQ(CeilLog2(3), 2u);
    EXPECT_EQ(CeilLog2(8), 3u);
    EXPECT_EQ(CeilLog2(9), 4u);
    EXPECT_EQ(CeilLog2(128), 7u);
    EXPECT_EQ(CeilLog2(129), 8u);
}

TEST(HardwareCost, CostIsModest)
{
    // The paper's implementability argument: even at 16 cores with a
    // 512-entry buffer the additional state stays well under a kilobyte
    // of storage per controller.
    HardwareCostParams params;
    params.num_threads = 16;
    params.request_buffer_entries = 512;
    params.num_banks = 16;
    EXPECT_LT(ParBsHardwareCost(params).TotalBits(), 8192u);
}

TEST(SchedulerCost, BaselinesAddNothing)
{
    // FR-FCFS is the reference design; FCFS removes logic, adds no state.
    EXPECT_EQ(SchedulerHardwareCost(SchedulerKind::kFrFcfs, {}).TotalBits(),
              0u);
    EXPECT_EQ(SchedulerHardwareCost(SchedulerKind::kFcfs, {}).TotalBits(),
              0u);
}

TEST(SchedulerCost, ParBsVariantsMatchTableOne)
{
    for (SchedulerKind kind :
         {SchedulerKind::kParBs, SchedulerKind::kParBsStatic,
          SchedulerKind::kParBsEslot, SchedulerKind::kParBsAdaptive}) {
        EXPECT_EQ(SchedulerHardwareCost(kind, {}).TotalBits(), 1412u)
            << SchedulerKindName(kind);
    }
}

TEST(SchedulerCost, BlissIsTheCheapestFairScheduler)
{
    // 8 blacklist bits + 3-bit last-served id + 3-bit streak counter
    // (values 0..4) + 14-bit clearing countdown = 28 bits at the
    // reference machine — two orders of magnitude below PAR-BS.
    const HardwareCostBreakdown bliss =
        SchedulerHardwareCost(SchedulerKind::kBliss, {});
    EXPECT_EQ(bliss.per_thread_bits, 8u);
    EXPECT_EQ(bliss.individual_bits, 3u + 3 + 14);
    EXPECT_EQ(bliss.TotalBits(), 28u);
    EXPECT_LE(bliss.TotalBits() * 50,
              SchedulerHardwareCost(SchedulerKind::kParBs, {}).TotalBits());
}

TEST(SchedulerCost, OrderingMatchesThePaperNarrative)
{
    // Cost ladder at the reference machine: the baselines are free, BLISS
    // is tens of bits, STFM hundreds, PAR-BS ~1.4K, NFQ the priciest
    // (per-thread per-bank virtual times).
    const auto bits = [](SchedulerKind kind) {
        return SchedulerHardwareCost(kind, {}).TotalBits();
    };
    EXPECT_LT(bits(SchedulerKind::kFrFcfs), bits(SchedulerKind::kBliss));
    EXPECT_LT(bits(SchedulerKind::kBliss), bits(SchedulerKind::kStfm));
    EXPECT_LT(bits(SchedulerKind::kStfm), bits(SchedulerKind::kParBs));
    EXPECT_LT(bits(SchedulerKind::kParBs), bits(SchedulerKind::kNfq));
}

TEST(SchedulerCost, BlissScalesWithThreadsAndInterval)
{
    HardwareCostParams params;
    params.num_threads = 16;
    params.bliss_clearing_interval = 1 << 20;
    const HardwareCostBreakdown cost =
        SchedulerHardwareCost(SchedulerKind::kBliss, params);
    EXPECT_EQ(cost.per_thread_bits, 16u);           // one bit per thread
    EXPECT_EQ(cost.individual_bits, 4u + 3 + 20);   // id + streak + countdown
}

} // namespace
} // namespace parbs
