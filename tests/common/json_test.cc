/** @file Tests for the minimal JSON library backing the bench harness. */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace parbs::json {
namespace {

TEST(Json, BuildsAndDumpsObjects)
{
    Value root = Value::Object();
    root.Set("name", "fig8");
    root.Set("count", static_cast<std::uint64_t>(3));
    root.Set("unfair", 1.25);
    root.Set("quick", true);
    Value list = Value::Array();
    list.Append(1.0);
    list.Append(2.5);
    root.Set("slowdowns", std::move(list));

    EXPECT_EQ(root.Dump(),
              "{\"name\":\"fig8\",\"count\":3,\"unfair\":1.25,"
              "\"quick\":true,\"slowdowns\":[1,2.5]}");
}

TEST(Json, PreservesInsertionOrder)
{
    Value root = Value::Object();
    root.Set("z", 1.0);
    root.Set("a", 2.0);
    root.Set("m", 3.0);
    const auto& members = root.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "z");
    EXPECT_EQ(members[1].first, "a");
    EXPECT_EQ(members[2].first, "m");
}

TEST(Json, ParseRoundTripsExactly)
{
    // Doubles use shortest-round-trip formatting, so parse(dump(x)) must
    // reproduce x bit-for-bit — the property the golden check relies on.
    Value root = Value::Object();
    root.Set("pi", 3.141592653589793);
    root.Set("tiny", 1e-300);
    root.Set("neg", -0.0625);
    root.Set("big", static_cast<std::uint64_t>(1) << 62);
    root.Set("text", "a\"b\\c\n\t\x01");
    const Value reparsed = Value::Parse(root.Dump(2));
    EXPECT_TRUE(reparsed == root);
    EXPECT_EQ(reparsed.Dump(), root.Dump());
}

TEST(Json, FindAndItems)
{
    Value root = Value::Parse(R"({"runs":[{"x":1},{"x":2}],"n":2})");
    ASSERT_NE(root.Find("runs"), nullptr);
    EXPECT_EQ(root.Find("missing"), nullptr);
    EXPECT_EQ(root.Find("runs")->items().size(), 2u);
    EXPECT_EQ(root.Find("runs")->items()[1].Find("x")->AsNumber(), 2.0);
}

TEST(Json, EqualityIsDeep)
{
    const Value a = Value::Parse(R"({"s":[{"k":[1,2,{"v":true}]}]})");
    const Value b = Value::Parse(R"({"s":[{"k":[1,2,{"v":true}]}]})");
    const Value c = Value::Parse(R"({"s":[{"k":[1,2,{"v":false}]}]})");
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_THROW(Value::Parse(""), ParseError);
    EXPECT_THROW(Value::Parse("{"), ParseError);
    EXPECT_THROW(Value::Parse("{\"a\":}"), ParseError);
    EXPECT_THROW(Value::Parse("[1,]"), ParseError);
    EXPECT_THROW(Value::Parse("nul"), ParseError);
    EXPECT_THROW(Value::Parse("1 2"), ParseError);
    EXPECT_THROW(Value::Parse("\"unterminated"), ParseError);
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i) {
        deep += "[";
    }
    EXPECT_THROW(Value::Parse(deep), ParseError);
}

} // namespace
} // namespace parbs::json
