/** @file Tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace parbs {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.Next64(), b.Next64());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.Next64() == b.Next64()) {
            equal += 1;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i) {
        seen.insert(rng.Next64());
    }
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.NextBelow(bound), bound);
        }
    }
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(rng.NextBelow(1), 0u);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.NextBelow(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.NextInRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.NextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.NextBool(0.0));
        EXPECT_TRUE(rng.NextBool(1.0));
        EXPECT_FALSE(rng.NextBool(-0.5));
        EXPECT_TRUE(rng.NextBool(1.5));
    }
}

TEST(Rng, NextBoolProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        hits += rng.NextBool(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    for (double mean : {0.5, 2.0, 10.0, 100.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            sum += static_cast<double>(rng.NextGeometric(mean));
        }
        EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.05)
            << "mean=" << mean;
    }
}

TEST(Rng, GeometricZeroAndNegativeMean)
{
    Rng rng(29);
    EXPECT_EQ(rng.NextGeometric(0.0), 0u);
    EXPECT_EQ(rng.NextGeometric(-1.0), 0u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> shuffled = v;
    rng.Shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(37);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i) {
        v[i] = i;
    }
    std::vector<int> shuffled = v;
    rng.Shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(41);
    Rng child = parent.Fork();
    // The child's stream should not replicate the parent's.
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.Next64() == child.Next64()) {
            equal += 1;
        }
    }
    EXPECT_LT(equal, 3);
}

} // namespace
} // namespace parbs
