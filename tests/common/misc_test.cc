/** @file Tests for error handling, logging, histogram, and table rendering. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "common/log.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace parbs {
namespace {

TEST(Assert, FatalThrowsConfigError)
{
    EXPECT_THROW(PARBS_FATAL("bad config"), ConfigError);
    try {
        PARBS_FATAL("specific message");
    } catch (const ConfigError& e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(Assert, AssertPassesOnTrue)
{
    PARBS_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Assert, AssertAbortsOnFalse)
{
    EXPECT_DEATH(PARBS_ASSERT(false, "intentional failure"),
                 "intentional failure");
}

TEST(Log, LevelRoundTrip)
{
    const LogLevel before = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
    SetLogLevel(LogLevel::kOff);
    EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
    SetLogLevel(before);
}

TEST(Histogram, CountsAndMoments)
{
    Histogram h(10, 10);
    for (std::uint64_t v : {5u, 15u, 15u, 25u, 99u}) {
        h.Add(v);
    }
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 99u);
    EXPECT_DOUBLE_EQ(h.Mean(), (5.0 + 15 + 15 + 25 + 99) / 5.0);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(10, 4); // Covers [0, 40); larger values overflow.
    h.Add(1000);
    h.Add(39);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, PercentileBucketGranular)
{
    Histogram h(10, 100);
    for (std::uint64_t v = 0; v < 100; ++v) {
        h.Add(v * 10);
    }
    // Median should land near the middle bucket.
    EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 20.0);
    EXPECT_GE(h.Percentile(1.0), h.Percentile(0.5));
}

TEST(Histogram, OverflowBucketIsCounted)
{
    Histogram h(10, 4); // Covers [0, 40); larger values overflow.
    h.Add(5);
    h.Add(39);
    EXPECT_EQ(h.overflow(), 0u);
    h.Add(40); // First value past the covered range.
    h.Add(1000);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, PercentileSummaryMatchesPercentiles)
{
    Histogram h(10, 100);
    for (std::uint64_t v = 0; v < 100; ++v) {
        h.Add(v * 10);
    }
    const Histogram::Summary s = h.PercentileSummary();
    EXPECT_EQ(s.p50, h.Percentile(0.50));
    EXPECT_EQ(s.p95, h.Percentile(0.95));
    EXPECT_EQ(s.p99, h.Percentile(0.99));
    EXPECT_EQ(s.max, h.max());
    EXPECT_LE(s.p50, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, EmptyPercentileSummaryIsZero)
{
    Histogram h(10, 10);
    const Histogram::Summary s = h.PercentileSummary();
    EXPECT_EQ(s.p50, 0u);
    EXPECT_EQ(s.p95, 0u);
    EXPECT_EQ(s.p99, 0u);
    EXPECT_EQ(s.max, 0u);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram h(10, 10);
    EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(10, 4);
    h.Add(5);
    h.Add(5);
    const std::string render = h.Render();
    EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.AddRow({"x", "1"});
    t.AddRow({"longer-name", "2.5"});
    const std::string out = t.Render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.AddRow({"only-one"});
    EXPECT_NO_THROW(t.Render());
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::Num(1.23456, 0), "1");
    EXPECT_EQ(Table::Num(-0.5, 1), "-0.5");
}

} // namespace
} // namespace parbs
