/**
 * @file
 * Histogram edge cases around the overflow bucket and percentile queries:
 * empty histograms, histograms whose every sample overflows, and
 * single-sample histograms.  These shapes show up in practice in the RAS
 * recovery-tax component (mostly-zero with a rare huge outlier).
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace parbs {
namespace {

TEST(Histogram, EmptySummaryIsAllZero)
{
    const Histogram histogram(8, 4);
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.min(), 0u);
    EXPECT_EQ(histogram.max(), 0u);
    EXPECT_EQ(histogram.overflow(), 0u);
    EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
    const Histogram::Summary summary = histogram.PercentileSummary();
    EXPECT_EQ(summary.p50, 0u);
    EXPECT_EQ(summary.p95, 0u);
    EXPECT_EQ(summary.p99, 0u);
    EXPECT_EQ(summary.max, 0u);
}

TEST(Histogram, AllSamplesInOverflowReportTrueMax)
{
    // Regular range is [0, 32); every sample lands beyond it.  Percentiles
    // must report the exact recorded maximum, not a bucket boundary.
    Histogram histogram(8, 4);
    histogram.Add(100);
    histogram.Add(200);
    histogram.Add(50000);
    EXPECT_EQ(histogram.overflow(), 3u);
    EXPECT_EQ(histogram.count(), 3u);
    EXPECT_EQ(histogram.min(), 100u);
    EXPECT_EQ(histogram.max(), 50000u);
    EXPECT_EQ(histogram.Percentile(0.5), 50000u);
    EXPECT_EQ(histogram.Percentile(1.0), 50000u);
    const Histogram::Summary summary = histogram.PercentileSummary();
    EXPECT_EQ(summary.p50, 50000u);
    EXPECT_EQ(summary.p99, 50000u);
    EXPECT_EQ(summary.max, 50000u);
}

TEST(Histogram, SingleSamplePercentilesAreClampedToTheSample)
{
    Histogram histogram(8, 4);
    histogram.Add(11); // bucket [8, 16)
    const Histogram::Summary summary = histogram.PercentileSummary();
    // The bucket's inclusive upper edge is 15, but no percentile may
    // exceed the observed maximum.
    EXPECT_EQ(summary.p50, 11u);
    EXPECT_EQ(summary.p95, 11u);
    EXPECT_EQ(summary.p99, 11u);
    EXPECT_EQ(summary.max, 11u);
    EXPECT_EQ(histogram.overflow(), 0u);
}

TEST(Histogram, AllZeroSamplesReportZeroPercentiles)
{
    // The RAS recovery-tax shape: thousands of zero-cost reads.  The
    // naive bucket upper edge (bucket_width - 1) would report a nonzero
    // p50 for a distribution that is identically zero.
    Histogram histogram(8, 4);
    for (int i = 0; i < 1000; ++i) {
        histogram.Add(0);
    }
    const Histogram::Summary summary = histogram.PercentileSummary();
    EXPECT_EQ(summary.p50, 0u);
    EXPECT_EQ(summary.p99, 0u);
    EXPECT_EQ(summary.max, 0u);
}

TEST(Histogram, SingleOverflowSampleIsItsOwnPercentile)
{
    Histogram histogram(8, 4);
    histogram.Add(1u << 20);
    EXPECT_EQ(histogram.overflow(), 1u);
    EXPECT_EQ(histogram.Percentile(0.5), 1u << 20);
    EXPECT_EQ(histogram.PercentileSummary().p50, 1u << 20);
}

TEST(Histogram, MixedRegularAndOverflowSamples)
{
    Histogram histogram(8, 4);
    for (int i = 0; i < 99; ++i) {
        histogram.Add(4); // bucket [0, 8)
    }
    histogram.Add(123456); // the 1% tail lives past the regular range
    EXPECT_EQ(histogram.overflow(), 1u);
    EXPECT_EQ(histogram.Percentile(0.5), 7u);
    EXPECT_EQ(histogram.Percentile(0.99), 7u);
    EXPECT_EQ(histogram.Percentile(1.0), 123456u);
    EXPECT_EQ(histogram.max(), 123456u);
}

TEST(Histogram, P999ReachesTheOverflowTail)
{
    // 1598 regular samples plus 2 overflow samples: p99.9 needs rank
    // ceil(0.999 * 1600) = 1599, which is the first overflow sample.  The
    // earlier round-half-up rank (1598) stopped one short, in the regular
    // bucket, so p99.9 under-reported the tail by orders of magnitude.
    Histogram histogram(8, 4);
    for (int i = 0; i < 1598; ++i) {
        histogram.Add(4); // bucket [0, 8)
    }
    histogram.Add(70000);
    histogram.Add(90000);
    EXPECT_EQ(histogram.overflow(), 2u);
    EXPECT_EQ(histogram.Percentile(0.999), 90000u);
    const Histogram::Summary summary = histogram.PercentileSummary();
    EXPECT_EQ(summary.p50, 7u);
    EXPECT_EQ(summary.p99, 7u);
    EXPECT_EQ(summary.p999, 90000u);
    EXPECT_EQ(summary.max, 90000u);
}

TEST(Histogram, P999MatchesMaxOnSmallCounts)
{
    // With fewer than 1000 samples p99.9 is the last sample by rank.
    Histogram histogram(8, 4);
    histogram.Add(3);
    histogram.Add(13);
    const Histogram::Summary summary = histogram.PercentileSummary();
    EXPECT_EQ(summary.p999, 13u);
    EXPECT_EQ(summary.max, 13u);
}

TEST(Histogram, ExactPercentileRanksDoNotRoundUp)
{
    // 0.95 * 100 is exactly representable as a rank; the epsilon guard in
    // Percentile must not push it to 96.  Samples 1..100, one per value,
    // bucket width 1: pN lands exactly on sample N.
    Histogram histogram(1, 128);
    for (std::uint64_t v = 1; v <= 100; ++v) {
        histogram.Add(v);
    }
    EXPECT_EQ(histogram.Percentile(0.50), 50u);
    EXPECT_EQ(histogram.Percentile(0.95), 95u);
    EXPECT_EQ(histogram.Percentile(0.99), 99u);
}

TEST(Histogram, ClearResetsOverflowAndPercentileState)
{
    Histogram histogram(8, 4);
    histogram.Add(1u << 16);
    histogram.Clear();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.overflow(), 0u);
    EXPECT_EQ(histogram.PercentileSummary().max, 0u);
    histogram.Add(3);
    EXPECT_EQ(histogram.Percentile(1.0), 3u);
}

TEST(Histogram, MergePreservesOverflowCounts)
{
    Histogram a(8, 4);
    Histogram b(8, 4);
    a.Add(1000);
    b.Add(2000);
    b.Add(1);
    a.Merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.overflow(), 2u);
    EXPECT_EQ(a.max(), 2000u);
    EXPECT_EQ(a.min(), 1u);
}

} // namespace
} // namespace parbs
