/** @file Tests for the Section 7.1 evaluation metrics. */

#include <gtest/gtest.h>

#include "stats/metrics.hh"

namespace parbs {
namespace {

ThreadMeasurement
Meas(double mcpi, double ipc, std::uint64_t requests = 100)
{
    ThreadMeasurement m;
    m.mcpi = mcpi;
    m.ipc = ipc;
    m.requests = requests;
    return m;
}

TEST(Metrics, DramLatencyToCpuCyclesIsRatioPlusFixedReturnPath)
{
    // Table 2 baseline: 10 CPU cycles per DRAM cycle, 60-cycle return path.
    EXPECT_EQ(DramLatencyToCpuCycles(100, 10, 60), 1060u);
    // The zero-ratio and overflow preconditions are asserted, not silently
    // wrapped; a zero DRAM latency still pays the fixed return path.
    EXPECT_EQ(DramLatencyToCpuCycles(0, 10, 60), 60u);
    // The documented uncontended round trips: row hit 10, closed 18,
    // conflict 26 DRAM cycles -> 160 / 240 / 320 CPU cycles.
    EXPECT_EQ(DramLatencyToCpuCycles(10, 10, 60), 160u);
    EXPECT_EQ(DramLatencyToCpuCycles(18, 10, 60), 240u);
    EXPECT_EQ(DramLatencyToCpuCycles(26, 10, 60), 320u);
}

TEST(Metrics, SlowdownIsMcpiRatio)
{
    EXPECT_DOUBLE_EQ(MemorySlowdown(Meas(2.0, 0.5), Meas(1.0, 1.0)), 2.0);
    EXPECT_DOUBLE_EQ(MemorySlowdown(Meas(9.0, 0.1), Meas(3.0, 0.4)), 3.0);
}

TEST(Metrics, SlowdownClampedAtOne)
{
    // A thread cannot be "sped up" by interference under this metric.
    EXPECT_DOUBLE_EQ(MemorySlowdown(Meas(0.5, 1.0), Meas(1.0, 1.0)), 1.0);
}

TEST(Metrics, SlowdownFloorsTinyAloneMcpi)
{
    // Nearly compute-bound threads do not produce unbounded slowdowns.
    const double s = MemorySlowdown(Meas(0.1, 1.0), Meas(1e-9, 1.0));
    EXPECT_LE(s, 10.0 + 1e-9);
}

TEST(Metrics, UnfairnessIsMaxOverMin)
{
    std::vector<ThreadMeasurement> alone{Meas(1.0, 1.0), Meas(1.0, 1.0)};
    std::vector<ThreadMeasurement> shared{Meas(4.0, 0.25), Meas(2.0, 0.5)};
    const WorkloadMetrics m = ComputeMetrics(shared, alone);
    EXPECT_DOUBLE_EQ(m.unfairness, 2.0);
    EXPECT_EQ(m.memory_slowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(m.memory_slowdown[0], 4.0);
}

TEST(Metrics, PerfectFairnessIsOne)
{
    std::vector<ThreadMeasurement> alone{Meas(1.0, 1.0), Meas(2.0, 0.5)};
    std::vector<ThreadMeasurement> shared{Meas(3.0, 0.33), Meas(6.0, 0.17)};
    EXPECT_DOUBLE_EQ(ComputeMetrics(shared, alone).unfairness, 1.0);
}

TEST(Metrics, WeightedSpeedupSumsIpcRatios)
{
    std::vector<ThreadMeasurement> alone{Meas(1.0, 1.0), Meas(1.0, 2.0)};
    std::vector<ThreadMeasurement> shared{Meas(2.0, 0.5), Meas(2.0, 1.0)};
    const WorkloadMetrics m = ComputeMetrics(shared, alone);
    EXPECT_DOUBLE_EQ(m.weighted_speedup, 0.5 + 0.5);
}

TEST(Metrics, HmeanSpeedupBalances)
{
    // Equal speedups: hmean == the common value.
    std::vector<ThreadMeasurement> alone{Meas(1.0, 1.0), Meas(1.0, 1.0)};
    std::vector<ThreadMeasurement> shared{Meas(1.0, 0.5), Meas(1.0, 0.5)};
    EXPECT_NEAR(ComputeMetrics(shared, alone).hmean_speedup, 0.5, 1e-9);
}

TEST(Metrics, HmeanPenalizesImbalance)
{
    std::vector<ThreadMeasurement> alone{Meas(1.0, 1.0), Meas(1.0, 1.0)};
    std::vector<ThreadMeasurement> balanced{Meas(1.0, 0.5), Meas(1.0, 0.5)};
    std::vector<ThreadMeasurement> skewed{Meas(1.0, 0.9), Meas(1.0, 0.1)};
    EXPECT_GT(ComputeMetrics(balanced, alone).hmean_speedup,
              ComputeMetrics(skewed, alone).hmean_speedup);
}

TEST(Metrics, WorstCaseLatencyIsMax)
{
    std::vector<ThreadMeasurement> alone{Meas(1, 1), Meas(1, 1)};
    std::vector<ThreadMeasurement> shared{Meas(1, 1), Meas(1, 1)};
    shared[0].worst_case_latency = 500;
    shared[1].worst_case_latency = 900;
    EXPECT_EQ(ComputeMetrics(shared, alone).worst_case_latency, 900u);
}

TEST(Metrics, AstAveragesOnlyActiveThreads)
{
    std::vector<ThreadMeasurement> alone{Meas(1, 1), Meas(1, 1)};
    std::vector<ThreadMeasurement> shared{Meas(1, 1, 100), Meas(1, 1, 0)};
    shared[0].ast_per_req = 200.0;
    shared[1].ast_per_req = 0.0; // No requests: excluded from the average.
    EXPECT_DOUBLE_EQ(ComputeMetrics(shared, alone).avg_ast_per_req, 200.0);
}

TEST(Metrics, GeometricMeanBasics)
{
    EXPECT_DOUBLE_EQ(GeometricMean({4.0}), 4.0);
    EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Metrics, GeometricMeanBelowArithmetic)
{
    std::vector<double> v{1.0, 2.0, 8.0, 16.0};
    EXPECT_LT(GeometricMean(v), ArithmeticMean(v));
}

TEST(Metrics, ArithmeticMeanBasics)
{
    EXPECT_DOUBLE_EQ(ArithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(ArithmeticMean({-1.0, 1.0}), 0.0);
}

TEST(Metrics, MismatchedSizesAbort)
{
    std::vector<ThreadMeasurement> alone{Meas(1, 1)};
    std::vector<ThreadMeasurement> shared{Meas(1, 1), Meas(1, 1)};
    EXPECT_DEATH(ComputeMetrics(shared, alone), "matching");
}

} // namespace
} // namespace parbs
