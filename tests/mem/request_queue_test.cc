/** @file Tests for the request buffer and its occupancy counters. */

#include <gtest/gtest.h>

#include "mem/request_queue.hh"

namespace parbs {
namespace {

std::unique_ptr<MemRequest>
Make(RequestId id, ThreadId thread, std::uint32_t bank,
     std::uint32_t rank = 0)
{
    auto request = std::make_unique<MemRequest>();
    request->id = id;
    request->thread = thread;
    request->coords.rank = rank;
    request->coords.bank = bank;
    return request;
}

TEST(RequestQueue, AddRemoveTracksSize)
{
    RequestQueue queue(4, 2, 1, 8);
    EXPECT_TRUE(queue.Empty());
    queue.Add(Make(1, 0, 0));
    queue.Add(Make(2, 1, 3));
    EXPECT_EQ(queue.size(), 2u);
    auto removed = queue.Remove(1);
    EXPECT_EQ(removed->id, 1u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, FullAtCapacity)
{
    RequestQueue queue(2, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_FALSE(queue.Full());
    queue.Add(Make(2, 0, 1));
    EXPECT_TRUE(queue.Full());
}

TEST(RequestQueue, ZeroCapacityIsUnbounded)
{
    RequestQueue queue(0, 1, 1, 8);
    for (RequestId id = 1; id <= 500; ++id) {
        queue.Add(Make(id, 0, id % 8));
    }
    EXPECT_FALSE(queue.Full());
    EXPECT_EQ(queue.size(), 500u);
}

TEST(RequestQueue, OverflowAborts)
{
    RequestQueue queue(1, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_DEATH(queue.Add(Make(2, 0, 1)), "overflow");
}

TEST(RequestQueue, OccupancyCountersFollowContents)
{
    RequestQueue queue(16, 2, 1, 8);
    queue.Add(Make(1, 0, 3));
    queue.Add(Make(2, 0, 3));
    queue.Add(Make(3, 0, 5));
    queue.Add(Make(4, 1, 3));
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 3), 2u);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 5), 1u);
    EXPECT_EQ(queue.ReqsInBankPerThread(1, 3), 1u);
    EXPECT_EQ(queue.ReqsPerThread(0), 3u);
    EXPECT_EQ(queue.ReqsPerThread(1), 1u);

    queue.Remove(2);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 3), 1u);
    EXPECT_EQ(queue.ReqsPerThread(0), 2u);
}

TEST(RequestQueue, MultiRankFlatBankIndexing)
{
    RequestQueue queue(16, 1, 2, 4); // 2 ranks x 4 banks = 8 flat banks.
    EXPECT_EQ(queue.num_banks(), 8u);
    queue.Add(Make(1, 0, 2, 0)); // rank 0 bank 2 -> flat 2
    queue.Add(Make(2, 0, 2, 1)); // rank 1 bank 2 -> flat 6
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 2), 1u);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 6), 1u);
}

TEST(RequestQueue, ViewIsArrivalOrdered)
{
    RequestQueue queue(16, 1, 1, 8);
    queue.Add(Make(10, 0, 0));
    queue.Add(Make(11, 0, 1));
    queue.Add(Make(12, 0, 2));
    queue.Remove(11);
    ASSERT_EQ(queue.requests().size(), 2u);
    EXPECT_EQ(queue.requests()[0]->id, 10u);
    EXPECT_EQ(queue.requests()[1]->id, 12u);
}

TEST(RequestQueue, RemoveMissingAborts)
{
    RequestQueue queue(16, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_DEATH(queue.Remove(99), "not in the buffer");
}

} // namespace
} // namespace parbs
