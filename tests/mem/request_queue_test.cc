/** @file Tests for the request buffer and its occupancy counters. */

#include <gtest/gtest.h>

#include "mem/request_queue.hh"

namespace parbs {
namespace {

std::unique_ptr<MemRequest>
Make(RequestId id, ThreadId thread, std::uint32_t bank,
     std::uint32_t rank = 0)
{
    auto request = std::make_unique<MemRequest>();
    request->id = id;
    request->thread = thread;
    request->coords.rank = rank;
    request->coords.bank = bank;
    return request;
}

TEST(RequestQueue, AddRemoveTracksSize)
{
    RequestQueue queue(4, 2, 1, 8);
    EXPECT_TRUE(queue.Empty());
    queue.Add(Make(1, 0, 0));
    queue.Add(Make(2, 1, 3));
    EXPECT_EQ(queue.size(), 2u);
    auto removed = queue.Remove(1);
    EXPECT_EQ(removed->id, 1u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, FullAtCapacity)
{
    RequestQueue queue(2, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_FALSE(queue.Full());
    queue.Add(Make(2, 0, 1));
    EXPECT_TRUE(queue.Full());
}

TEST(RequestQueue, ZeroCapacityIsUnbounded)
{
    RequestQueue queue(0, 1, 1, 8);
    for (RequestId id = 1; id <= 500; ++id) {
        queue.Add(Make(id, 0, id % 8));
    }
    EXPECT_FALSE(queue.Full());
    EXPECT_EQ(queue.size(), 500u);
}

TEST(RequestQueue, OverflowAborts)
{
    RequestQueue queue(1, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_DEATH(queue.Add(Make(2, 0, 1)), "overflow");
}

TEST(RequestQueue, OccupancyCountersFollowContents)
{
    RequestQueue queue(16, 2, 1, 8);
    queue.Add(Make(1, 0, 3));
    queue.Add(Make(2, 0, 3));
    queue.Add(Make(3, 0, 5));
    queue.Add(Make(4, 1, 3));
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 3), 2u);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 5), 1u);
    EXPECT_EQ(queue.ReqsInBankPerThread(1, 3), 1u);
    EXPECT_EQ(queue.ReqsPerThread(0), 3u);
    EXPECT_EQ(queue.ReqsPerThread(1), 1u);

    queue.Remove(2);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 3), 1u);
    EXPECT_EQ(queue.ReqsPerThread(0), 2u);
}

TEST(RequestQueue, MultiRankFlatBankIndexing)
{
    RequestQueue queue(16, 1, 2, 4); // 2 ranks x 4 banks = 8 flat banks.
    EXPECT_EQ(queue.num_banks(), 8u);
    queue.Add(Make(1, 0, 2, 0)); // rank 0 bank 2 -> flat 2
    queue.Add(Make(2, 0, 2, 1)); // rank 1 bank 2 -> flat 6
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 2), 1u);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 6), 1u);
}

TEST(RequestQueue, ViewIsArrivalOrdered)
{
    RequestQueue queue(16, 1, 1, 8);
    queue.Add(Make(10, 0, 0));
    queue.Add(Make(11, 0, 1));
    queue.Add(Make(12, 0, 2));
    queue.Remove(11);
    ASSERT_EQ(queue.requests().size(), 2u);
    EXPECT_EQ(queue.requests()[0]->id, 10u);
    EXPECT_EQ(queue.requests()[1]->id, 12u);
}

TEST(RequestQueue, RemoveMissingAborts)
{
    RequestQueue queue(16, 1, 1, 8);
    queue.Add(Make(1, 0, 0));
    EXPECT_DEATH(queue.Remove(99), "not in the buffer");
}

TEST(RequestQueue, BankChainsAreArrivalOrderedPerBank)
{
    RequestQueue queue(16, 2, 1, 8);
    queue.Add(Make(1, 0, 3));
    queue.Add(Make(2, 1, 5));
    queue.Add(Make(3, 0, 3));
    queue.Add(Make(4, 1, 3));

    std::vector<RequestId> bank3;
    for (const MemRequest* request : queue.BankQueued(3)) {
        bank3.push_back(request->id);
    }
    EXPECT_EQ(bank3, (std::vector<RequestId>{1, 3, 4}));
    EXPECT_EQ(queue.QueuedInBank(3), 3u);
    EXPECT_EQ(queue.QueuedInBank(5), 1u);
    EXPECT_TRUE(queue.BankQueued(0).empty());
    EXPECT_EQ(queue.BankQueued(3).front()->id, 1u);
    queue.CheckIndex();
}

TEST(RequestQueue, BeginServiceUnlinksButKeepsBuffered)
{
    RequestQueue queue(16, 1, 1, 8);
    queue.Add(Make(1, 0, 2));
    MemRequest& middle = queue.Add(Make(2, 0, 2));
    queue.Add(Make(3, 0, 2));

    queue.BeginService(middle);
    middle.state = RequestState::kInBurst;

    std::vector<RequestId> chain;
    for (const MemRequest* request : queue.BankQueued(2)) {
        chain.push_back(request->id);
    }
    EXPECT_EQ(chain, (std::vector<RequestId>{1, 3}));
    EXPECT_EQ(queue.QueuedInBank(2), 2u);
    // Still buffered (occupancy counters include in-burst requests).
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.ReqsInBankPerThread(0, 2), 3u);
    queue.CheckIndex();

    // Removing the in-burst request must not touch the chain again.
    queue.Remove(2);
    EXPECT_EQ(queue.QueuedInBank(2), 2u);
    queue.CheckIndex();
}

TEST(RequestQueue, BeginServiceUnlinkedAborts)
{
    RequestQueue queue(16, 1, 1, 8);
    MemRequest& request = queue.Add(Make(1, 0, 0));
    queue.BeginService(request);
    request.state = RequestState::kInBurst;
    EXPECT_DEATH(queue.BeginService(request), "not in its bank chain");
}

TEST(RequestQueue, BankGenerationsBumpOnChainChangesOnly)
{
    RequestQueue queue(16, 1, 1, 8);
    const std::uint64_t gen2 = queue.BankGeneration(2);
    const std::uint64_t gen4 = queue.BankGeneration(4);
    EXPECT_GE(gen2, 1u); // generations start at 1: 0 is never valid, so
                         // zero-initialized memo slots always read stale.

    MemRequest& request = queue.Add(Make(1, 0, 2));
    EXPECT_GT(queue.BankGeneration(2), gen2);
    EXPECT_EQ(queue.BankGeneration(4), gen4); // untouched bank unchanged

    const std::uint64_t after_add = queue.BankGeneration(2);
    queue.BeginService(request);
    request.state = RequestState::kInBurst;
    EXPECT_GT(queue.BankGeneration(2), after_add);

    const std::uint64_t after_service = queue.BankGeneration(2);
    queue.Remove(1); // already unlinked: chain untouched
    EXPECT_EQ(queue.BankGeneration(2), after_service);
}

TEST(RequestQueue, OldestIsFrontOfArrivalOrder)
{
    RequestQueue queue(16, 1, 1, 8);
    EXPECT_EQ(queue.Oldest(), nullptr);
    queue.Add(Make(7, 0, 0));
    queue.Add(Make(8, 0, 1));
    ASSERT_NE(queue.Oldest(), nullptr);
    EXPECT_EQ(queue.Oldest()->id, 7u);
    queue.Remove(7);
    EXPECT_EQ(queue.Oldest()->id, 8u);
}

} // namespace
} // namespace parbs
