/** @file Tests for the forward-progress watchdog. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "common/assert.hh"
#include "mem/watchdog.hh"
#include "obs/latency.hh"
#include "obs/tracer.hh"
#include "sched/factory.hh"
#include "sim/fault_injector.hh"
#include "test_util.hh"

namespace parbs {
namespace {

std::unique_ptr<Scheduler>
FrFcfs()
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kFrFcfs;
    return MakeScheduler(config);
}

std::unique_ptr<Scheduler>
ParBs()
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kParBs;
    return MakeScheduler(config);
}

TEST(WatchdogConfig, ValidateRejectsNonsense)
{
    WatchdogConfig config;
    config.enabled = true;
    config.check_interval = 0;
    EXPECT_THROW(config.Validate(), ConfigError);

    config = WatchdogConfig{};
    config.enabled = true;
    config.batch_bound_factor = -1.0;
    EXPECT_THROW(config.Validate(), ConfigError);

    // A disabled watchdog's knobs are never consulted.
    config = WatchdogConfig{};
    config.enabled = false;
    config.check_interval = 0;
    EXPECT_NO_THROW(config.Validate());
}

TEST(Watchdog, DerivesDocumentedDefaultBounds)
{
    WatchdogConfig config;
    config.enabled = true;
    const dram::TimingParams timing;
    ForwardProgressWatchdog watchdog(config, timing, 128);
    // 4 x queue capacity x (tRC + tBURST).
    EXPECT_EQ(watchdog.starvation_bound(),
              4 * 128 * (timing.tRC() + timing.tBURST));
    // max(512, 4 x (tRFC + tRC)).
    EXPECT_EQ(watchdog.no_progress_bound(),
              std::max<DramCycle>(512, 4 * (timing.tRFC + timing.tRC())));
}

TEST(Watchdog, ExplicitBoundsWin)
{
    WatchdogConfig config;
    config.enabled = true;
    config.starvation_bound = 777;
    config.no_progress_bound = 999;
    const dram::TimingParams timing;
    ForwardProgressWatchdog watchdog(config, timing, 128);
    EXPECT_EQ(watchdog.starvation_bound(), 777u);
    EXPECT_EQ(watchdog.no_progress_bound(), 999u);
    EXPECT_EQ(ResolveNoProgressBound(config, timing), 999u);
}

TEST(Watchdog, CleanRunDoesNotTrip)
{
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    test::ControllerHarness harness(ParBs(), 4, config);
    for (std::uint32_t i = 0; i < 100; ++i) {
        harness.Enqueue(i % 4, i % 8, (i * 3) % 64, i % 16,
                        /*is_write=*/(i % 7) == 0);
        if (i % 2 == 0) {
            harness.Tick(3);
        }
    }
    EXPECT_NO_THROW(harness.RunUntilIdle());
    EXPECT_EQ(harness.controller().pending_reads(), 0u);
}

TEST(Watchdog, CatchesRequestStarvation)
{
    // A buggy scheduler withholds service from thread 0 while thread 1's
    // traffic keeps the channel busy: the victim's request ages past the
    // bound and the watchdog must fail the run with a diagnostic dump.
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    config.watchdog.starvation_bound = 1500;
    test::ControllerHarness harness(
        std::make_unique<WithholdingScheduler>(FrFcfs(), 0), 2, config);
    harness.Enqueue(0, 0, 1); // the victim
    try {
        for (std::uint32_t i = 0; i < 4000; ++i) {
            if (i % 16 == 0) {
                harness.Enqueue(1, i % 8, (i / 16) % 32);
            }
            harness.Tick();
        }
        FAIL() << "expected WatchdogError";
    } catch (const WatchdogError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("request starvation"), std::string::npos)
            << what;
        EXPECT_NE(what.find("thread=0"), std::string::npos) << what;
        // The dump carries enough context to debug from the message alone.
        EXPECT_NE(what.find("controller diagnostics"), std::string::npos);
        EXPECT_NE(what.find("bank states"), std::string::npos);
        EXPECT_NE(what.find("scheduler"), std::string::npos);
    }
}

TEST(Watchdog, CatchesNoForwardProgress)
{
    // Only the victim has traffic, so the withholding scheduler issues no
    // command at all: the no-progress detector trips first.
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    test::ControllerHarness harness(
        std::make_unique<WithholdingScheduler>(FrFcfs(), 0), 2, config);
    harness.Enqueue(0, 0, 1);
    try {
        harness.Tick(4000);
        FAIL() << "expected WatchdogError";
    } catch (const WatchdogError& error) {
        EXPECT_NE(std::string(error.what()).find("no forward progress"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Watchdog, StallDumpCarriesTraceTail)
{
    // With a tracer attached, a watchdog failure appends the recent ring
    // events relevant to the stall — here the no-progress case, whose
    // wildcard filter shows everything, including the victim's arrival.
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    test::ControllerHarness harness(
        std::make_unique<WithholdingScheduler>(FrFcfs(), 0), 2, config);
    obs::Tracer tracer(1024);
    obs::LatencyAnatomy latency(2);
    harness.controller().AttachObservability(&tracer, &latency, 0);
    harness.Enqueue(0, 0, 1);
    try {
        harness.Tick(4000);
        FAIL() << "expected WatchdogError";
    } catch (const WatchdogError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("recent trace events"), std::string::npos)
            << what;
        EXPECT_NE(what.find("req-arrive"), std::string::npos) << what;
    }
}

TEST(Watchdog, StallDumpOmittedWithoutTracer)
{
    // The pre-observability failure text is unchanged when no tracer is
    // attached (the default).
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    test::ControllerHarness harness(
        std::make_unique<WithholdingScheduler>(FrFcfs(), 0), 2, config);
    harness.Enqueue(0, 0, 1);
    try {
        harness.Tick(4000);
        FAIL() << "expected WatchdogError";
    } catch (const WatchdogError& error) {
        EXPECT_EQ(std::string(error.what()).find("recent trace events"),
                  std::string::npos);
    }
}

TEST(Watchdog, CatchesBatchNonCompletion)
{
    // PAR-BS marks the victim's requests into a batch; withholding service
    // then violates the paper's starvation-freedom theorem, which the
    // batch-completion bound checks at runtime.  Other bounds are pushed
    // out of the way so the batch check is the one that fires.
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.watchdog.enabled = true;
    config.watchdog.starvation_bound = 1000000000;
    config.watchdog.no_progress_bound = 1000000000;
    config.watchdog.batch_bound_factor = 1.0;
    test::ControllerHarness harness(
        std::make_unique<WithholdingScheduler>(ParBs(), 0), 2, config);
    for (std::uint32_t i = 0; i < 4; ++i) {
        harness.Enqueue(0, i, 5);
    }
    try {
        harness.Tick(20000);
        FAIL() << "expected WatchdogError";
    } catch (const WatchdogError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("batch overdue"), std::string::npos) << what;
        EXPECT_NE(what.find("starvation-freedom"), std::string::npos)
            << what;
    }
}

} // namespace
} // namespace parbs
