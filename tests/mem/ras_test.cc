/**
 * @file
 * Tests for the RAS subsystem: the deterministic error model, the ECC
 * retry / row-retirement state machine, machine-check surfacing, the
 * patrol scrubber, and the recovery-tax latency component.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/assert.hh"
#include "dram/error_model.hh"
#include "mem/ras.hh"
#include "mem/scrubber.hh"
#include "obs/latency.hh"
#include "obs/tracer.hh"
#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs {
namespace {

std::unique_ptr<Scheduler>
FrFcfs()
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kFrFcfs;
    return MakeScheduler(config);
}

// --- Error model ---------------------------------------------------------

TEST(ErrorModel, ClassificationIsAPureFunctionOfItsKey)
{
    dram::ErrorModelConfig config;
    config.seed = 42;
    config.channel = 1;
    config.transient_error_rate = 0.3;
    const dram::ErrorModel a(config);
    const dram::ErrorModel b(config);
    for (std::uint64_t access = 0; access < 200; ++access) {
        EXPECT_EQ(a.ClassifyTransient(0, 3, 17, access),
                  b.ClassifyTransient(0, 3, 17, access));
    }
    EXPECT_EQ(a.RowStuck(0, 2, 9), b.RowStuck(0, 2, 9));
}

TEST(ErrorModel, TransientRateIsHonoredStatistically)
{
    dram::ErrorModelConfig config;
    config.seed = 7;
    config.transient_error_rate = 0.5;
    config.transient_uncorrectable = 0.0;
    const dram::ErrorModel model(config);
    std::uint64_t errors = 0;
    constexpr std::uint64_t kDraws = 4000;
    for (std::uint64_t access = 0; access < kDraws; ++access) {
        if (model.ClassifyTransient(0, 0, 0, access) !=
            dram::EccOutcome::kClean) {
            errors += 1;
        }
    }
    EXPECT_GT(errors, kDraws * 45 / 100);
    EXPECT_LT(errors, kDraws * 55 / 100);
}

TEST(ErrorModel, StuckRowPopulationDependsOnChannel)
{
    dram::ErrorModelConfig config;
    config.seed = 11;
    config.stuck_row_fraction = 0.5;
    auto stuck_set = [&](std::uint32_t channel) {
        dram::ErrorModelConfig c = config;
        c.channel = channel;
        const dram::ErrorModel model(c);
        std::set<std::uint32_t> rows;
        for (std::uint32_t row = 0; row < 1024; ++row) {
            if (model.RowStuck(0, 0, row)) {
                rows.insert(row);
            }
        }
        return rows;
    };
    const auto ch0 = stuck_set(0);
    const auto ch1 = stuck_set(1);
    EXPECT_GT(ch0.size(), 300u);
    EXPECT_LT(ch0.size(), 700u);
    EXPECT_NE(ch0, ch1);
    EXPECT_EQ(ch0, stuck_set(0)); // deterministic in (seed, channel)
}

TEST(ErrorModel, RejectsOutOfRangeRates)
{
    dram::ErrorModelConfig config;
    config.transient_error_rate = 1.5;
    EXPECT_THROW(config.Validate(), ConfigError);
    config = {};
    config.stuck_row_fraction = -0.1;
    EXPECT_THROW(config.Validate(), ConfigError);
}

TEST(RasConfig, RejectsZeroRetryBackoff)
{
    RasConfig config;
    config.enabled = true;
    config.retry_backoff = 0;
    EXPECT_THROW(config.Validate(), ConfigError);
}

// --- ECC recovery path ---------------------------------------------------

ControllerConfig
RasControllerConfig()
{
    ControllerConfig config = test::ControllerHarness::DefaultConfig();
    config.ras.enabled = true;
    config.ras.seed = 1234;
    return config;
}

TEST(Ras, CorrectableErrorsAreTransparentlyAbsorbed)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.transient_error_rate = 1.0;     // every read errors...
    config.ras.transient_uncorrectable = 0.0;  // ...correctably
    test::ControllerHarness harness(FrFcfs(), 2, config);
    for (std::uint32_t i = 0; i < 20; ++i) {
        harness.Enqueue(i % 2, i % 8, i % 32);
    }
    harness.RunUntilIdle();
    EXPECT_EQ(harness.completed().size(), 20u);
    const RasStats& stats = harness.controller().ras()->stats();
    EXPECT_EQ(stats.corrected, 20u);
    EXPECT_EQ(stats.uncorrectable, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.rows_retired, 0u);
}

TEST(Ras, UncorrectableReadRetriesWithBoundedBudgetThenRetires)
{
    // Every attempt fails uncorrectably, so each read must burn its full
    // retry budget, retire the row, and succeed from the remapped row.
    ControllerConfig config = RasControllerConfig();
    config.ras.transient_error_rate = 1.0;
    config.ras.transient_uncorrectable = 1.0;
    config.ras.retry_budget = 3;
    config.ras.remap_capacity = 8;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Enqueue(0, 2, 5);
    harness.RunUntilIdle();
    ASSERT_EQ(harness.completed().size(), 1u);
    const RasEngine* ras = harness.controller().ras();
    // budget + 1 failed attempts, then a clean read of the remapped row.
    EXPECT_EQ(ras->stats().uncorrectable, 4u);
    EXPECT_EQ(ras->stats().retries, 4u);
    EXPECT_EQ(ras->stats().rows_retired, 1u);
    EXPECT_EQ(ras->remap_used(), 1u);
    EXPECT_TRUE(ras->IsRetired(0, 2, 5));
}

TEST(Ras, RetiredRowsAreExcludedFromSubsequentTraffic)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.stuck_row_fraction = 1.0;
    config.ras.retry_budget = 1;
    config.ras.remap_capacity = 4;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Enqueue(0, 1, 9);
    harness.RunUntilIdle();
    const RasEngine* ras = harness.controller().ras();
    ASSERT_EQ(ras->stats().rows_retired, 1u);
    const std::uint64_t failures = ras->stats().uncorrectable;
    // Ten more reads of the (remapped) row must classify clean.
    for (std::uint32_t i = 0; i < 10; ++i) {
        harness.Enqueue(0, 1, 9, i + 1);
    }
    harness.RunUntilIdle();
    EXPECT_EQ(harness.completed().size(), 11u);
    EXPECT_EQ(ras->stats().uncorrectable, failures);
    EXPECT_EQ(ras->stats().rows_retired, 1u);
}

TEST(Ras, RemapExhaustionSurfacesAsMachineCheck)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.stuck_row_fraction = 1.0;
    config.ras.retry_budget = 1;
    config.ras.remap_capacity = 1;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Enqueue(0, 0, 10); // retires into the only remap slot
    harness.Enqueue(0, 1, 20); // must machine-check
    try {
        harness.RunUntilIdle();
        FAIL() << "expected MachineCheckError";
    } catch (const MachineCheckError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("machine check"), std::string::npos) << what;
        EXPECT_NE(what.find("remap table full"), std::string::npos) << what;
        EXPECT_NE(what.find("row 20"), std::string::npos) << what;
    }
    const RasEngine* ras = harness.controller().ras();
    EXPECT_EQ(ras->stats().machine_checks, 1u);
    EXPECT_EQ(ras->remap_used(), 1u);
}

TEST(Ras, RecoveryTaxIsRecordedPerThread)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.transient_error_rate = 1.0;
    config.ras.transient_uncorrectable = 1.0;
    config.ras.retry_budget = 2;
    config.ras.remap_capacity = 16;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    obs::Tracer tracer(4096);
    obs::LatencyAnatomy latency(2);
    harness.controller().AttachObservability(&tracer, &latency, 0);
    harness.Enqueue(1, 3, 7);
    harness.RunUntilIdle();
    ASSERT_EQ(latency.recorded_reads(), 1u);
    // The read needed retries, so its recovery tax is strictly positive
    // and bounded by its total latency.
    EXPECT_EQ(latency.Recovery(1).count(), 1u);
    EXPECT_GT(latency.Recovery(1).max(), 0u);
    EXPECT_LE(latency.Recovery(1).max(), latency.Total(1).max());
    EXPECT_EQ(latency.Recovery(0).count(), 0u);
}

TEST(Ras, CleanReadsPayZeroRecoveryTax)
{
    ControllerConfig config = RasControllerConfig();
    test::ControllerHarness harness(FrFcfs(), 2, config);
    obs::Tracer tracer(4096);
    obs::LatencyAnatomy latency(2);
    harness.controller().AttachObservability(&tracer, &latency, 0);
    for (std::uint32_t i = 0; i < 8; ++i) {
        harness.Enqueue(0, i, 3);
    }
    harness.RunUntilIdle();
    ASSERT_EQ(latency.recorded_reads(), 8u);
    EXPECT_EQ(latency.Recovery(0).count(), 8u);
    EXPECT_EQ(latency.Recovery(0).max(), 0u);
}

// --- Patrol scrubber -----------------------------------------------------

TEST(Scrubber, CursorWalksRowsBanksRanksThenWraps)
{
    dram::Geometry geometry = test::TestGeometry();
    geometry.rows_per_bank = 2;
    geometry.banks_per_rank = 2;
    Scrubber scrubber(geometry, /*interval=*/8, /*demote_reads=*/4);
    EXPECT_EQ(scrubber.rank(), 0u);
    EXPECT_EQ(scrubber.bank(), 0u);
    EXPECT_EQ(scrubber.row(), 0u);
    for (int i = 0; i < 4; ++i) {
        scrubber.AdvanceCursor();
    }
    EXPECT_EQ(scrubber.sweeps(), 1u);
    EXPECT_EQ(scrubber.rank(), 0u);
    EXPECT_EQ(scrubber.bank(), 0u);
    EXPECT_EQ(scrubber.row(), 0u);
}

TEST(Ras, ScrubberReadsRowsDuringIdleCycles)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.scrub_interval = 16;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Tick(4000); // fully idle: every interval belongs to the scrub
    const RasEngine* ras = harness.controller().ras();
    EXPECT_GT(ras->stats().scrub_reads, 50u);
    EXPECT_EQ(ras->stats().scrub_uncorrectable, 0u);
    const Scrubber* scrubber = harness.controller().scrubber();
    ASSERT_NE(scrubber, nullptr);
    EXPECT_GT(scrubber->rank() + scrubber->bank() + scrubber->row(), 0u);
}

TEST(Ras, ScrubberProactivelyRetiresStuckRows)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.scrub_interval = 8;
    config.ras.stuck_row_fraction = 1.0;
    config.ras.remap_capacity = 1u << 20; // never exhausts
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Tick(2000);
    const RasEngine* ras = harness.controller().ras();
    EXPECT_GT(ras->stats().scrub_uncorrectable, 0u);
    EXPECT_GT(ras->stats().rows_retired, 0u);
    // Retirement came from the scrub alone: no demand reads ran at all.
    EXPECT_EQ(ras->stats().uncorrectable, 0u);
    EXPECT_EQ(ras->stats().retries, 0u);
}

TEST(Ras, ScrubStandsDownUnderQueuePressure)
{
    ControllerConfig config = RasControllerConfig();
    config.ras.scrub_interval = 1;
    config.ras.scrub_demote_reads = 1;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    // With the demotion threshold at one queued read, scrub only ever runs
    // on cycles where the read queue is empty — demand is never starved.
    for (std::uint32_t i = 0; i < 50; ++i) {
        harness.Enqueue(0, i % 8, i % 16);
    }
    harness.RunUntilIdle();
    EXPECT_EQ(harness.completed().size(), 50u);
}

TEST(Ras, WatchdogDumpIncludesRasState)
{
    // Satellite: the stall dump must carry the RAS counters and remap
    // occupancy so a stalled run under errors is debuggable from the
    // message alone.
    ControllerConfig config = RasControllerConfig();
    config.ras.stuck_row_fraction = 1.0;
    config.ras.retry_budget = 1;
    config.ras.remap_capacity = 4;
    config.watchdog.enabled = true;
    config.watchdog.no_progress_bound = 600;
    test::ControllerHarness harness(FrFcfs(), 2, config);
    harness.Enqueue(0, 0, 3);
    harness.RunUntilIdle();
    ASSERT_EQ(harness.controller().ras()->stats().rows_retired, 1u);
    const std::string dump =
        harness.controller().Diagnostics(harness.now());
    EXPECT_NE(dump.find("ras: corrected=0"), std::string::npos) << dump;
    EXPECT_NE(dump.find("remap=1/4"), std::string::npos) << dump;
    EXPECT_NE(dump.find("retries=2"), std::string::npos) << dump;
}

} // namespace
} // namespace parbs
