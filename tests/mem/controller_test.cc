/** @file Tests for the memory controller: service, stats, writes, refresh. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "sched/frfcfs.hh"
#include "sched/fcfs.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

TEST(Controller, SingleReadCompletesWithClosedLatency)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    const dram::TimingParams t = test::TestTiming();
    h.Enqueue(0, 0, 1);
    h.RunUntilIdle();
    ASSERT_EQ(h.completed().size(), 1u);
    // ACT at cycle 0 is not possible (tick order: the request is enqueued
    // at cycle 0 and picked that same tick); data = ACT + tRCD + tCL +
    // tBURST.
    EXPECT_LE(h.now(), t.ClosedLatency() + t.tBURST + 3);
}

TEST(Controller, RowHitClassification)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 1, 0);
    h.Enqueue(0, 0, 1, 1); // Same row: serviced as a hit.
    h.Enqueue(0, 0, 2, 0); // Different row: conflict.
    h.RunUntilIdle();
    const ControllerThreadStats& stats = h.controller().thread_stats(0);
    EXPECT_EQ(stats.reads_completed, 3u);
    EXPECT_EQ(stats.read_row_closed, 1u);
    EXPECT_EQ(stats.read_row_hits, 1u);
    EXPECT_EQ(stats.read_row_conflicts, 1u);
    EXPECT_NEAR(stats.RowHitRate(), 1.0 / 3.0, 1e-9);
}

TEST(Controller, CompletionOrderRowHitFirst)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    const RequestId a = h.Enqueue(0, 0, 1); // Opens row 1.
    h.Tick(3);
    const RequestId conflict = h.Enqueue(1, 0, 2);
    const RequestId hit = h.Enqueue(2, 0, 1);
    h.RunUntilIdle();
    ASSERT_EQ(h.completed().size(), 3u);
    EXPECT_EQ(h.completed()[0], a);
    // FR-FCFS services the younger row-hit before the older conflict.
    EXPECT_EQ(h.completed()[1], hit);
    EXPECT_EQ(h.completed()[2], conflict);
}

TEST(Controller, FcfsServicesInArrivalOrder)
{
    ControllerHarness h(std::make_unique<FcfsScheduler>());
    const RequestId a = h.Enqueue(0, 0, 1);
    h.Tick(3);
    const RequestId conflict = h.Enqueue(1, 0, 2);
    const RequestId hit = h.Enqueue(2, 0, 1);
    h.RunUntilIdle();
    ASSERT_EQ(h.completed().size(), 3u);
    EXPECT_EQ(h.completed()[0], a);
    EXPECT_EQ(h.completed()[1], conflict);
    EXPECT_EQ(h.completed()[2], hit);
}

TEST(Controller, BankParallelismOverlapsServce)
{
    // Two requests to different banks finish much sooner than two
    // conflicting requests to the same bank.
    const dram::TimingParams t = test::TestTiming();

    ControllerHarness parallel(std::make_unique<FrFcfsScheduler>());
    parallel.Enqueue(0, 0, 1);
    parallel.Enqueue(0, 1, 1);
    parallel.RunUntilIdle();
    const DramCycle parallel_time = parallel.now();

    ControllerHarness serial(std::make_unique<FrFcfsScheduler>());
    serial.Enqueue(0, 0, 1);
    serial.Enqueue(0, 0, 2);
    serial.RunUntilIdle();
    const DramCycle serial_time = serial.now();

    EXPECT_LT(parallel_time, serial_time);
    EXPECT_LE(parallel_time, t.ClosedLatency() + t.tBURST + t.tRRD + 4);
}

TEST(Controller, BlpStatsReflectParallelService)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        h.Enqueue(0, bank, 1);
    }
    h.RunUntilIdle();
    EXPECT_GT(h.controller().thread_stats(0).AverageBlp(), 1.8);
}

TEST(Controller, SerialRequestsHaveBlpNearOne)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 1, 0);
    h.Enqueue(0, 0, 1, 1);
    h.Enqueue(0, 0, 1, 2);
    h.RunUntilIdle();
    EXPECT_LE(h.controller().thread_stats(0).AverageBlp(), 1.01);
}

TEST(Controller, ReadsPrioritizedOverWrites)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 2, 0, true); // Write, enqueued first.
    const RequestId read = h.Enqueue(1, 0, 3);
    h.RunUntilIdle();
    // The read completes first despite being younger and conflicting.
    ASSERT_EQ(h.completed().size(), 1u);
    EXPECT_EQ(h.completed()[0], read);
    EXPECT_EQ(h.controller().thread_stats(0).writes_completed, 1u);
}

TEST(Controller, WritesDrainWhenNoReads)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    for (int i = 0; i < 5; ++i) {
        h.Enqueue(0, i, 1, 0, true);
    }
    h.RunUntilIdle();
    EXPECT_EQ(h.controller().thread_stats(0).writes_completed, 5u);
    EXPECT_EQ(h.controller().pending_writes(), 0u);
}

TEST(Controller, ForcedDrainProtectsWriteQueue)
{
    // Keep a stream of ready reads while pushing writes past the high
    // watermark: the drain must still make write progress.
    ControllerConfig config = ControllerHarness::DefaultConfig();
    config.write_queue_capacity = 16;
    config.write_drain_high = 8;
    config.write_drain_low = 2;
    ControllerHarness h(std::make_unique<FrFcfsScheduler>(), 4, config);

    std::uint32_t column = 0;
    for (int i = 0; i < 10; ++i) {
        h.Enqueue(0, 0, 1, column++ % 32, true);
    }
    // Sustained same-row reads that would otherwise always win.
    for (int burst = 0; burst < 30; ++burst) {
        h.Enqueue(1, 1, 7, burst % 32);
        h.Tick(8);
    }
    h.RunUntilIdle();
    EXPECT_EQ(h.controller().pending_writes(), 0u);
    EXPECT_EQ(h.controller().thread_stats(0).writes_completed, 10u);
}

TEST(Controller, LatencyStatsTrackWorstCase)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 1);
    h.Enqueue(0, 0, 2);
    h.Enqueue(0, 0, 3);
    h.RunUntilIdle();
    const ControllerThreadStats& stats = h.controller().thread_stats(0);
    EXPECT_GT(stats.read_latency_max, stats.AverageReadLatency() * 0.99);
    EXPECT_GT(stats.read_latency_max,
              test::TestTiming().ConflictLatency());
}

TEST(Controller, CommandCountsAreConsistent)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 1, 0);
    h.Enqueue(0, 0, 1, 1);
    h.Enqueue(0, 0, 2, 0);
    h.RunUntilIdle();
    // 3 reads, 2 activates (rows 1 and 2), 1 precharge (conflict).
    EXPECT_EQ(h.controller().commands_issued(dram::CommandType::kRead), 3u);
    EXPECT_EQ(h.controller().commands_issued(dram::CommandType::kActivate),
              2u);
    EXPECT_EQ(h.controller().commands_issued(dram::CommandType::kPrecharge),
              1u);
}

TEST(Controller, RefreshIsPerformedAndBlocksTraffic)
{
    ControllerConfig config;
    config.enable_refresh = true;
    dram::TimingParams timing = test::TestTiming();
    timing.tREFI = 200; // Short interval so the test sees refreshes.
    ControllerHarness h(std::make_unique<FrFcfsScheduler>(), 4, config,
                        timing);
    // Sustained traffic across the refresh boundary.
    for (int i = 0; i < 40; ++i) {
        h.Enqueue(0, i % 8, 1 + i / 8);
        h.Tick(25);
    }
    h.RunUntilIdle();
    EXPECT_GE(h.controller().commands_issued(dram::CommandType::kRefresh),
              4u);
    EXPECT_EQ(h.controller().thread_stats(0).reads_completed, 40u);
}

TEST(Controller, RefreshClosesOpenRows)
{
    ControllerConfig config;
    config.enable_refresh = true;
    dram::TimingParams timing = test::TestTiming();
    timing.tREFI = 100;
    ControllerHarness h(std::make_unique<FrFcfsScheduler>(), 4, config,
                        timing);
    h.Enqueue(0, 0, 5); // Opens row 5 in bank 0.
    h.RunUntilIdle();
    h.Tick(300); // Cross the refresh boundary (quiesce + refresh).
    // A new request to the same row must be a closed access, not a hit.
    h.Enqueue(0, 0, 5);
    h.RunUntilIdle();
    const ControllerThreadStats& stats = h.controller().thread_stats(0);
    EXPECT_EQ(stats.read_row_hits, 0u);
    EXPECT_EQ(stats.read_row_closed, 2u);
}

TEST(Controller, PerThreadStatsAreIsolated)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 0, 1);
    h.Enqueue(1, 1, 1);
    h.Enqueue(1, 2, 1);
    h.RunUntilIdle();
    EXPECT_EQ(h.controller().thread_stats(0).reads_completed, 1u);
    EXPECT_EQ(h.controller().thread_stats(1).reads_completed, 2u);
}

TEST(Controller, InvalidDrainWatermarksRejected)
{
    ControllerConfig config;
    config.write_drain_low = 60;
    config.write_drain_high = 40;
    EXPECT_THROW(
        Controller(config, test::TestTiming(), test::TestGeometry(), 2,
                   std::make_unique<FrFcfsScheduler>()),
        ConfigError);
}

} // namespace
} // namespace parbs
