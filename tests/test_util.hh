/**
 * @file
 * Shared test fixtures: a controller harness that drives a Controller with
 * hand-built requests at DRAM-cycle granularity, recording completions.
 */

#ifndef PARBS_TESTS_TEST_UTIL_HH
#define PARBS_TESTS_TEST_UTIL_HH

#include <memory>
#include <vector>

#include "mem/controller.hh"
#include "sched/scheduler.hh"

namespace parbs::test {

/** Baseline DDR2-800 timing (the library defaults). */
inline dram::TimingParams
TestTiming()
{
    return dram::TimingParams{};
}

/** Single-channel, single-rank, 8-bank geometry with small rows. */
inline dram::Geometry
TestGeometry()
{
    dram::Geometry geometry;
    geometry.channels = 1;
    geometry.ranks_per_channel = 1;
    geometry.banks_per_rank = 8;
    geometry.rows_per_bank = 1024;
    geometry.row_bytes = 2048;
    geometry.line_bytes = 64;
    return geometry;
}

/** Drives one Controller directly with synthetic requests. */
class ControllerHarness {
  public:
    explicit ControllerHarness(std::unique_ptr<Scheduler> scheduler,
                               std::uint32_t num_threads = 4,
                               ControllerConfig config = DefaultConfig(),
                               dram::TimingParams timing = TestTiming(),
                               dram::Geometry geometry = TestGeometry())
        : controller_(config, timing, geometry, num_threads,
                      std::move(scheduler))
    {
        controller_.SetReadCompleteCallback(
            [this](const MemRequest& request, DramCycle) {
                completed_.push_back(request.id);
                completed_threads_.push_back(request.thread);
            });
    }

    /**
     * Refresh off by default: most tests want deterministic schedules.
     * The protocol checker is ON so the entire suite doubles as shadow-model
     * validation — any illegal command issued anywhere throws ProtocolError.
     */
    static ControllerConfig
    DefaultConfig()
    {
        ControllerConfig config;
        config.enable_refresh = false;
        config.protocol_check = true;
        return config;
    }

    /** Enqueues a request with explicit coordinates; returns its id. */
    RequestId
    Enqueue(ThreadId thread, std::uint32_t bank, std::uint32_t row,
            std::uint32_t column = 0, bool is_write = false)
    {
        auto request = std::make_unique<MemRequest>();
        request->id = next_id_++;
        request->thread = thread;
        request->coords.channel = 0;
        request->coords.rank = 0;
        request->coords.bank = bank;
        request->coords.row = row;
        request->coords.column = column;
        request->is_write = is_write;
        const RequestId id = request->id;
        controller_.Enqueue(std::move(request), now_);
        return id;
    }

    /** Advances @p cycles DRAM cycles. */
    void
    Tick(std::uint64_t cycles = 1)
    {
        for (std::uint64_t i = 0; i < cycles; ++i) {
            controller_.Tick(now_);
            now_ += 1;
        }
    }

    /** Runs until all buffered requests retire (or @p max_cycles). */
    void
    RunUntilIdle(std::uint64_t max_cycles = 100000)
    {
        std::uint64_t spent = 0;
        while ((controller_.pending_reads() > 0 ||
                controller_.pending_writes() > 0) &&
               spent < max_cycles) {
            Tick();
            spent += 1;
        }
    }

    Controller& controller() { return controller_; }
    DramCycle now() const { return now_; }
    const std::vector<RequestId>& completed() const { return completed_; }
    const std::vector<ThreadId>& completed_threads() const
    {
        return completed_threads_;
    }

  private:
    Controller controller_;
    DramCycle now_ = 0;
    RequestId next_id_ = 1;
    std::vector<RequestId> completed_;
    std::vector<ThreadId> completed_threads_;
};

} // namespace parbs::test

#endif // PARBS_TESTS_TEST_UTIL_HH
