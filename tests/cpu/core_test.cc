/** @file Tests for the processor core model: in-order commit, stalls,
 *  memory-level parallelism (the Figure 1/2 behaviours), MSHRs, stores. */

#include <gtest/gtest.h>

#include <map>

#include "common/assert.hh"
#include "cpu/core.hh"
#include "trace/trace.hh"

namespace parbs {
namespace {

/** A memory port with a fixed latency and scriptable acceptance. */
class MockPort : public MemoryPort {
  public:
    std::optional<RequestId>
    TryIssueRead(ThreadId, Addr addr) override
    {
        if (!accept_reads) {
            return std::nullopt;
        }
        const RequestId id = next_id++;
        pending[id] = {addr, now + read_latency};
        reads_seen += 1;
        return id;
    }

    bool
    TryIssueWrite(ThreadId, Addr) override
    {
        if (!accept_writes) {
            return false;
        }
        writes_seen += 1;
        return true;
    }

    /** Advances time; returns ids whose data is now ready. */
    std::vector<RequestId>
    Tick()
    {
        now += 1;
        std::vector<RequestId> ready;
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->second.ready_at <= now) {
                ready.push_back(it->first);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
        return ready;
    }

    struct Entry {
        Addr addr;
        CpuCycle ready_at;
    };
    CpuCycle now = 0;
    CpuCycle read_latency = 50;
    bool accept_reads = true;
    bool accept_writes = true;
    RequestId next_id = 1;
    std::map<RequestId, Entry> pending;
    int reads_seen = 0;
    int writes_seen = 0;
};

/** Runs @p core against @p port until done or @p max cycles. */
void
RunCore(Core& core, MockPort& port, CpuCycle max = 100000)
{
    for (CpuCycle i = 0; i < max && !core.Done(); ++i) {
        for (RequestId id : port.Tick()) {
            core.OnReadComplete(id);
        }
        core.Tick();
    }
}

TraceEntry
Load(Addr addr, std::uint32_t compute = 0, bool dependent = false)
{
    TraceEntry e;
    e.compute_instructions = compute;
    e.addr = addr;
    e.depends_on_prev = dependent;
    return e;
}

TraceEntry
Store(Addr addr, std::uint32_t compute = 0)
{
    TraceEntry e;
    e.compute_instructions = compute;
    e.addr = addr;
    e.is_write = true;
    return e;
}

TEST(Core, ComputeOnlyTraceCommitsAtFullWidth)
{
    MockPort port;
    VectorTraceSource trace({Load(0, 299)});
    port.read_latency = 1;
    CoreConfig config;
    Core core(config, 0, trace, port);
    RunCore(core, port);
    EXPECT_TRUE(core.Done());
    EXPECT_EQ(core.stats().instructions, 300u);
    // 300 instructions at width 3 plus small pipeline slack.
    EXPECT_LE(core.stats().cycles, 110u);
}

TEST(Core, SingleLoadStallsUntilData)
{
    MockPort port;
    port.read_latency = 200;
    VectorTraceSource trace({Load(0x1000)});
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    EXPECT_EQ(core.stats().loads_issued, 1u);
    EXPECT_EQ(core.stats().loads_completed, 1u);
    // Nearly the whole latency shows up as memory stall.
    EXPECT_GE(core.stats().load_stall_cycles, 195u);
    EXPECT_GE(core.stats().AstPerRequest(), 195.0);
}

TEST(Core, IndependentLoadsOverlap)
{
    // The Figure 1 behaviour: two independent misses expose roughly one
    // latency, not two.
    MockPort port;
    port.read_latency = 200;
    VectorTraceSource trace({Load(0x1000), Load(0x2000)});
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    EXPECT_LE(core.stats().load_stall_cycles, 210u);
    EXPECT_EQ(core.stats().loads_completed, 2u);
}

TEST(Core, DependentLoadsSerialize)
{
    // The pointer-chasing contract: depends_on_prev exposes each latency.
    MockPort port;
    port.read_latency = 200;
    VectorTraceSource trace({Load(0x1000), Load(0x2000, 0, true)});
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    EXPECT_GE(core.stats().load_stall_cycles, 390u);
}

TEST(Core, ManyIndependentLoadsStallOnce)
{
    MockPort port;
    port.read_latency = 300;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 6; ++i) {
        entries.push_back(Load(0x1000 + 64 * i, 5));
    }
    VectorTraceSource trace(entries);
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    // All six overlap: total stall well under 2 latencies.
    EXPECT_LT(core.stats().load_stall_cycles, 450u);
}

TEST(Core, MshrLimitBoundsOutstanding)
{
    MockPort port;
    port.read_latency = 100000; // Nothing ever returns.
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 64; ++i) {
        entries.push_back(Load(64 * i));
    }
    VectorTraceSource trace(entries);
    CoreConfig config;
    config.mshrs = 4;
    config.window_size = 512;
    Core core(config, 0, trace, port);
    for (int i = 0; i < 200; ++i) {
        core.Tick();
    }
    EXPECT_EQ(port.reads_seen, 4);
}

TEST(Core, WindowLimitBoundsOutstanding)
{
    MockPort port;
    port.read_latency = 100000;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 64; ++i) {
        entries.push_back(Load(64 * i, 19)); // 20 instructions per miss.
    }
    VectorTraceSource trace(entries);
    CoreConfig config;
    config.window_size = 128;
    config.mshrs = 32;
    Core core(config, 0, trace, port);
    for (int i = 0; i < 500; ++i) {
        core.Tick();
    }
    // A 128-entry window holds ~6.4 twenty-instruction blocks.
    EXPECT_GE(port.reads_seen, 6);
    EXPECT_LE(port.reads_seen, 8);
}

TEST(Core, StoresDoNotBlockCommit)
{
    MockPort port;
    VectorTraceSource trace({Store(0x1000), Load(0, 49)});
    port.read_latency = 1;
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    EXPECT_TRUE(core.Done());
    EXPECT_EQ(core.stats().stores_issued, 1u);
    // The store may expose at most the one-cycle commit/issue pipeline
    // bubble, never a memory-latency-sized stall.
    EXPECT_LE(core.stats().store_stall_cycles, 1u);
}

TEST(Core, FullWriteBufferEventuallyStallsCommit)
{
    MockPort port;
    port.accept_writes = false;
    port.read_latency = 1;
    VectorTraceSource trace({Store(0x1000)});
    Core core(CoreConfig{}, 0, trace, port);
    for (int i = 0; i < 100; ++i) {
        core.Tick();
    }
    EXPECT_FALSE(core.Done());
    EXPECT_GT(core.stats().store_stall_cycles, 50u);
    // Once the buffer opens up, the core drains.
    port.accept_writes = true;
    RunCore(core, port);
    EXPECT_TRUE(core.Done());
}

TEST(Core, RetriesWhenRequestBufferFull)
{
    MockPort port;
    port.accept_reads = false;
    port.read_latency = 10;
    VectorTraceSource trace({Load(0x40)});
    Core core(CoreConfig{}, 0, trace, port);
    for (int i = 0; i < 20; ++i) {
        core.Tick();
    }
    EXPECT_EQ(core.stats().loads_issued, 0u);
    port.accept_reads = true;
    RunCore(core, port);
    EXPECT_TRUE(core.Done());
    EXPECT_EQ(core.stats().loads_issued, 1u);
}

TEST(Core, McpiAndMpkiAreConsistent)
{
    MockPort port;
    port.read_latency = 100;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 50; ++i) {
        entries.push_back(Load(64 * i, 99, true)); // 100 instr per miss.
    }
    VectorTraceSource trace(entries);
    Core core(CoreConfig{}, 0, trace, port);
    RunCore(core, port);
    EXPECT_NEAR(core.stats().Mpki(), 10.0, 0.5);
    EXPECT_GT(core.stats().Mcpi(), 0.5);
    EXPECT_NEAR(core.stats().Mcpi(),
                core.stats().AstPerRequest() * core.stats().Mpki() / 1000.0,
                0.2);
}

TEST(Core, OneMemoryOpFetchedPerCycle)
{
    MockPort port;
    port.read_latency = 1;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 9; ++i) {
        entries.push_back(Load(64 * i));
    }
    VectorTraceSource trace(entries);
    Core core(CoreConfig{}, 0, trace, port);
    core.Tick();
    // After one cycle, at most one memory op can have entered the window
    // (and hence at most one issue).
    EXPECT_LE(port.reads_seen, 1);
}

TEST(Core, DoneOnlyAfterDrain)
{
    MockPort port;
    port.read_latency = 30;
    VectorTraceSource trace({Load(0x40)});
    Core core(CoreConfig{}, 0, trace, port);
    core.Tick();
    EXPECT_FALSE(core.Done());
    RunCore(core, port);
    EXPECT_TRUE(core.Done());
}

TEST(Core, UnknownCompletionAborts)
{
    MockPort port;
    VectorTraceSource trace({Load(0x40)});
    Core core(CoreConfig{}, 0, trace, port);
    EXPECT_DEATH(core.OnReadComplete(12345), "unknown request");
}

TEST(Core, InvalidConfigRejected)
{
    MockPort port;
    VectorTraceSource trace({});
    CoreConfig config;
    config.window_size = 0;
    EXPECT_THROW(Core(config, 0, trace, port), ConfigError);
}

} // namespace
} // namespace parbs
