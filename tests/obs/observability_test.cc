/**
 * @file
 * Tests for the observability layer: the event tracer ring, the scheduler
 * observer hook, trace export (Chrome trace-event JSON), the interval
 * sampler, the latency anatomy, and the determinism of traced runs.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hh"
#include "common/json.hh"
#include "obs/observability.hh"
#include "sched/factory.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "test_util.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

std::vector<std::unique_ptr<TraceSource>>
SyntheticTraces(const SystemConfig& config, std::uint32_t count,
                double mpki = 20.0)
{
    dram::AddressMapper mapper(config.geometry, config.xor_bank_hash);
    std::vector<std::unique_ptr<TraceSource>> traces;
    for (ThreadId t = 0; t < count; ++t) {
        SyntheticParams params;
        params.mpki = mpki;
        traces.push_back(std::make_unique<SyntheticTraceSource>(
            params, mapper, t, count, 1000 + t));
    }
    return traces;
}

SystemConfig
TracedConfig(SchedulerKind kind, DramCycle sample_interval = 256)
{
    SystemConfig config = SystemConfig::Baseline(4);
    config.scheduler.kind = kind;
    config.observability.trace = true;
    config.observability.sample_interval = sample_interval;
    return config;
}

std::set<obs::EventKind>
KindsOf(const obs::Tracer& tracer)
{
    std::set<obs::EventKind> kinds;
    for (const obs::TraceEvent& event : tracer.Snapshot()) {
        kinds.insert(event.kind);
    }
    return kinds;
}

TEST(Tracer, RingIsBoundedAndKeepsNewestInOrder)
{
    obs::Tracer tracer(4);
    for (DramCycle cycle = 0; cycle < 6; ++cycle) {
        tracer.Emit({cycle, obs::EventKind::kCommand, 0, 0, 0, 0, 0});
    }
    EXPECT_EQ(tracer.capacity(), 4u);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    EXPECT_EQ(tracer.latest_cycle(), 5u);
    const std::vector<obs::TraceEvent> events = tracer.Snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, 2 + i) << "slot " << i;
    }
}

TEST(Tracer, FormatTailFiltersByThread)
{
    obs::Tracer tracer(16);
    tracer.Emit({1, obs::EventKind::kRequestArrive, 0, 0, 3, 10, 0});
    tracer.Emit({2, obs::EventKind::kRequestArrive, 0, 1, 4, 11, 0});
    const std::string tail =
        tracer.FormatTail(0, obs::kNoFlatBank, 16);
    EXPECT_NE(tail.find("recent trace events"), std::string::npos);
    EXPECT_NE(tail.find("thread=0"), std::string::npos);
    EXPECT_EQ(tail.find("thread=1"), std::string::npos);
    // The wildcard filter shows everything.
    const std::string all =
        tracer.FormatTail(kInvalidThread, obs::kNoFlatBank, 16);
    EXPECT_NE(all.find("thread=1"), std::string::npos);
}

TEST(ObservabilityConfig, ValidateRejectsZeroRing)
{
    obs::ObservabilityConfig config;
    config.trace = true;
    config.trace_ring_capacity = 0;
    EXPECT_THROW(config.Validate(), ConfigError);
    config.trace = false;
    EXPECT_NO_THROW(config.Validate());
}

TEST(SchedulerObserver, KnobEventsFireForEveryScheduler)
{
    // The observer hook lives in the Scheduler base class, so every policy
    // emits priority/weight events without per-scheduler forks.
    for (SchedulerKind kind :
         {SchedulerKind::kFcfs, SchedulerKind::kFrFcfs, SchedulerKind::kNfq,
          SchedulerKind::kStfm, SchedulerKind::kParBs}) {
        SchedulerConfig config;
        config.kind = kind;
        // The harness's controller attaches the scheduler to its queues,
        // which the knob setters require.
        test::ControllerHarness harness(MakeScheduler(config));
        obs::Tracer tracer(16);
        obs::SchedulerTraceAdapter adapter(tracer, 0);
        Scheduler& scheduler = harness.controller().scheduler();
        scheduler.SetObserver(&adapter);
        scheduler.SetThreadPriority(0, kHighestPriority);
        scheduler.SetThreadWeight(1, 2.0);
        const std::set<obs::EventKind> kinds = KindsOf(tracer);
        EXPECT_TRUE(kinds.count(obs::EventKind::kPriorityChange))
            << SchedulerKindName(kind);
        EXPECT_TRUE(kinds.count(obs::EventKind::kWeightChange))
            << SchedulerKindName(kind);
    }
}

TEST(Observability, TracedParBsRunEmitsFullEventSet)
{
    SystemConfig config = TracedConfig(SchedulerKind::kParBs);
    System system(config, SyntheticTraces(config, 4));
    system.Run(100000);

    ASSERT_NE(system.observability(), nullptr);
    const obs::Observability& obs = *system.observability();
    const std::set<obs::EventKind> kinds = KindsOf(obs.tracer());
    EXPECT_TRUE(kinds.count(obs::EventKind::kRequestArrive));
    EXPECT_TRUE(kinds.count(obs::EventKind::kRequestFirstIssue));
    EXPECT_TRUE(kinds.count(obs::EventKind::kRequestBurst));
    EXPECT_TRUE(kinds.count(obs::EventKind::kRequestRetire));
    EXPECT_TRUE(kinds.count(obs::EventKind::kCommand));
    EXPECT_TRUE(kinds.count(obs::EventKind::kBatchFormed));
    EXPECT_TRUE(kinds.count(obs::EventKind::kBatchComplete));
    EXPECT_TRUE(kinds.count(obs::EventKind::kThreadRank));
}

TEST(Observability, MarkCapSkipEventsEmittedUnderTightCap)
{
    SystemConfig config = TracedConfig(SchedulerKind::kParBs);
    config.scheduler.parbs.marking_cap = 1;
    System system(config, SyntheticTraces(config, 4, /*mpki=*/50.0));
    system.Run(100000);
    EXPECT_TRUE(KindsOf(system.observability()->tracer())
                    .count(obs::EventKind::kMarkCapSkip));
}

TEST(Observability, LatencyAnatomyComponentsSumToTotal)
{
    SystemConfig config = TracedConfig(SchedulerKind::kParBs);
    System system(config, SyntheticTraces(config, 4));
    system.Run(100000);

    const obs::LatencyAnatomy& latency = system.observability()->latency();
    EXPECT_GT(latency.recorded_reads(), 0u);
    for (ThreadId t = 0; t < 4; ++t) {
        const std::uint64_t count = latency.Total(t).count();
        EXPECT_GT(count, 0u) << "thread " << t;
        EXPECT_EQ(latency.Queueing(t).count(), count);
        EXPECT_EQ(latency.Service(t).count(), count);
        EXPECT_EQ(latency.Bus(t).count(), count);
        // queueing + service + bus == total holds per read by construction,
        // so it holds for the sums, and the counts match, so the means add.
        EXPECT_NEAR(latency.Queueing(t).Mean() + latency.Service(t).Mean() +
                        latency.Bus(t).Mean(),
                    latency.Total(t).Mean(), 1e-9)
            << "thread " << t;
    }
}

TEST(Observability, SamplerCadenceAndEdgeCases)
{
    // Normal cadence: one row per interval, stamped at the interval mark.
    {
        SystemConfig config = TracedConfig(SchedulerKind::kParBs, 256);
        System system(config, SyntheticTraces(config, 4));
        system.Run(50000); // 5000 DRAM cycles.
        const auto& samples = system.observability()->sampler().samples();
        ASSERT_GT(samples.size(), 10u);
        for (std::size_t i = 0; i < samples.size(); ++i) {
            EXPECT_EQ(samples[i].cycle, (i + 1) * 256) << "row " << i;
            ASSERT_EQ(samples[i].controllers.size(), 1u);
            EXPECT_EQ(samples[i].controllers[0].bank_queued.size(), 8u);
            EXPECT_EQ(samples[i].controllers[0].thread_blp.size(), 4u);
        }
    }
    // Interval 0 disables the time series.
    {
        SystemConfig config = TracedConfig(SchedulerKind::kParBs, 0);
        System system(config, SyntheticTraces(config, 4));
        system.Run(50000);
        EXPECT_TRUE(system.observability()->sampler().samples().empty());
    }
    // An interval longer than the run yields an empty series.
    {
        SystemConfig config = TracedConfig(SchedulerKind::kParBs, 1u << 30);
        System system(config, SyntheticTraces(config, 4));
        system.Run(50000);
        EXPECT_TRUE(system.observability()->sampler().samples().empty());
    }
}

TEST(Observability, DisabledLeavesNoObjectAndIdenticalResults)
{
    auto measure = [](bool traced) {
        SystemConfig config = SystemConfig::Baseline(4);
        config.scheduler.kind = SchedulerKind::kParBs;
        config.observability.trace = traced;
        config.observability.sample_interval = traced ? 256 : 0;
        System system(config, SyntheticTraces(config, 4));
        system.Run(50000);
        EXPECT_EQ(system.observability() != nullptr, traced);
        std::vector<std::uint64_t> out;
        for (ThreadId t = 0; t < 4; ++t) {
            const ThreadMeasurement m = system.Measure(t);
            out.push_back(m.requests);
            out.push_back(m.instructions);
            out.push_back(m.worst_case_latency);
        }
        return out;
    };
    // Observability is pure observation: the simulation is cycle-for-cycle
    // identical with and without it.
    EXPECT_EQ(measure(true), measure(false));
}

TEST(Observability, TraceJsonRoundTripsThroughParser)
{
    SystemConfig config = TracedConfig(SchedulerKind::kParBs);
    System system(config, SyntheticTraces(config, 4));
    system.Run(50000);

    std::ostringstream out;
    system.WriteTrace(out, "round-trip");
    const std::string text = out.str();
    json::Value parsed;
    ASSERT_NO_THROW(parsed = json::Value::Parse(text));

    const json::Value* events = parsed.Find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->items().size(), 100u);
    EXPECT_EQ(parsed.Find("otherData")->Find("workload")->AsString(),
              "round-trip");
    ASSERT_NE(parsed.Find("samples"), nullptr);
    ASSERT_NE(parsed.Find("latency"), nullptr);

    // Shortest-round-trip number formatting makes parse(dump) a fixpoint:
    // re-serializing the parsed document reproduces the file byte-for-byte.
    EXPECT_EQ(parsed.Dump(2) + "\n", text);
}

TEST(Observability, TraceBytesIdenticalAcrossJobCounts)
{
    // The tracer inherits the runner determinism contract: running four
    // traced systems on one worker or four must produce the same bytes.
    auto produce = [](unsigned jobs) {
        TaskPool pool(jobs);
        std::vector<std::string> traces(4);
        pool.ParallelFor(4, [&traces](std::size_t index) {
            SystemConfig config = TracedConfig(SchedulerKind::kParBs);
            config.seed = 1 + index;
            System system(config, SyntheticTraces(config, 4));
            system.Run(30000);
            std::ostringstream out;
            system.WriteTrace(out, "jobs-" + std::to_string(index));
            traces[index] = out.str();
        });
        return traces;
    };
    EXPECT_EQ(produce(1), produce(4));
}

} // namespace
} // namespace parbs
