/**
 * @file
 * Tests for the BLISS blacklisting scheduler: bit set at the streak
 * threshold, interval clearing, two-level arbitration, starvation freedom
 * under an adversarial streamer, and memo-soundness of the per-bank pick
 * cache across blacklist transitions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/assert.hh"
#include "common/rng.hh"
#include "sched/bliss.hh"
#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

/** Harness around a BlissScheduler we keep a typed handle to. */
struct BlissHarness {
    explicit BlissHarness(const BlissConfig& config = {},
                          std::uint32_t num_threads = 4,
                          ControllerConfig controller =
                              ControllerHarness::DefaultConfig())
        : owned(std::make_unique<BlissScheduler>(config)),
          bliss(owned.get()),
          h(std::move(owned), num_threads, controller)
    {
    }

    std::unique_ptr<BlissScheduler> owned;
    BlissScheduler* bliss;
    ControllerHarness h;
};

TEST(Bliss, DefaultNameAndConfigMatchThePaper)
{
    BlissScheduler scheduler;
    EXPECT_EQ(scheduler.name(), "BLISS");
    EXPECT_EQ(scheduler.config().blacklist_threshold, 4u);
    EXPECT_EQ(scheduler.config().clearing_interval, 10000u);
    EXPECT_EQ(BlissScheduler(BlissConfig{2, 500}).name(),
              "BLISS(n=2,clear=500)");
}

TEST(Bliss, StreakAtThresholdSetsTheBit)
{
    BlissHarness x;
    // A single thread streaming row hits tags itself after 4 data
    // commands; a thread that never reaches the threshold stays clean.
    for (std::uint32_t column = 0; column < 4; ++column) {
        x.h.Enqueue(0, 0, 1, column);
    }
    x.h.Enqueue(1, 1, 1, 0);
    x.h.RunUntilIdle();
    EXPECT_TRUE(x.bliss->Blacklisted(0));
    EXPECT_FALSE(x.bliss->Blacklisted(1));
    EXPECT_EQ(x.bliss->BlacklistedCount(), 1u);
}

TEST(Bliss, InterleavedServiceNeverBlacklists)
{
    BlissHarness x;
    // Two threads alternating on one bank: the streak resets on every
    // ownership change and never reaches 4.
    for (std::uint32_t i = 0; i < 12; ++i) {
        x.h.Enqueue(static_cast<ThreadId>(i % 2), 0, 1 + (i % 2), i);
        x.h.RunUntilIdle();
    }
    EXPECT_EQ(x.bliss->BlacklistedCount(), 0u);
}

TEST(Bliss, IntervalClearingLiftsThePenalty)
{
    BlissHarness x(BlissConfig{4, 500});
    for (std::uint32_t column = 0; column < 4; ++column) {
        x.h.Enqueue(0, 0, 1, column);
    }
    x.h.RunUntilIdle();
    ASSERT_TRUE(x.bliss->Blacklisted(0));
    // Tick past the next multiple of the clearing interval (the tick AT
    // cycle k*500 performs the clear).
    const DramCycle target = (x.h.now() / 500 + 1) * 500;
    while (x.h.now() <= target) {
        x.h.Tick();
    }
    EXPECT_FALSE(x.bliss->Blacklisted(0));
    EXPECT_EQ(x.bliss->BlacklistedCount(), 0u);
    const auto stats = x.bliss->Stats();
    const auto find = [&](const char* key) {
        for (const auto& [name, value] : stats) {
            if (name == key) {
                return value;
            }
        }
        return -1.0;
    };
    EXPECT_GE(find("blacklist_clearings"), 1.0);
    EXPECT_GE(find("blacklist_events"), 1.0);
    EXPECT_DOUBLE_EQ(find("blacklisted_now"), 0.0);
}

TEST(Bliss, BlacklistedRowHitLosesToCleanRowMiss)
{
    BlissHarness x;
    // Blacklist thread 0 with a row-hit streak on bank 0.
    for (std::uint32_t column = 0; column < 4; ++column) {
        x.h.Enqueue(0, 0, 1, column);
    }
    x.h.RunUntilIdle();
    ASSERT_TRUE(x.bliss->Blacklisted(0));
    ASSERT_FALSE(x.bliss->Blacklisted(1));

    // Row 1 is still open in bank 0: thread 0 offers a row hit, thread 1
    // a row miss.  FR-FCFS would serve the hit first; BLISS must serve
    // the non-blacklisted thread first.
    const std::size_t before = x.h.completed().size();
    x.h.Enqueue(0, 0, 1, 10);
    x.h.Enqueue(1, 0, 2, 0);
    x.h.RunUntilIdle();
    ASSERT_EQ(x.h.completed().size(), before + 2);
    EXPECT_EQ(x.h.completed_threads()[before], 1);
    EXPECT_EQ(x.h.completed_threads()[before + 1], 0);
}

TEST(Bliss, WithinALevelFrFcfsOrderHolds)
{
    BlissHarness x;
    // No thread blacklisted: row hit beats older row miss, exactly
    // FR-FCFS.  Open row 1 in bank 0 first.
    x.h.Enqueue(0, 0, 1, 0);
    x.h.RunUntilIdle();
    const std::size_t before = x.h.completed().size();
    const RequestId miss = x.h.Enqueue(2, 0, 7, 0); // older, row miss
    const RequestId hit = x.h.Enqueue(3, 0, 1, 1);  // younger, row hit
    x.h.RunUntilIdle();
    ASSERT_EQ(x.h.completed().size(), before + 2);
    EXPECT_EQ(x.h.completed()[before], hit);
    EXPECT_EQ(x.h.completed()[before + 1], miss);
}

TEST(Bliss, AdversarialStreamerCannotStarveALightThread)
{
    // Thread 0 keeps an endless row-hit stream on bank 0; thread 1 drops
    // one row-miss request into the same bank every 400 cycles.  The
    // blacklist must keep serving thread 1 throughout the run, and the
    // interval clears must keep re-penalizing the streamer.
    // Refresh on: a 30000-cycle run crosses the tREFI deadline and the
    // protocol checker (rightly) demands the refreshes happen.
    ControllerConfig controller = ControllerHarness::DefaultConfig();
    controller.enable_refresh = true;
    BlissHarness x(BlissConfig{}, 2, controller);
    Rng rng(0xB1155);
    std::uint32_t column = 0;
    std::uint64_t light_enqueued = 0;
    for (std::uint64_t cycle = 0; cycle < 30000; ++cycle) {
        while (x.h.controller().pending_reads() < 24) {
            x.h.Enqueue(0, 0, 1, column++ % 32);
        }
        if (cycle % 400 == 0) {
            x.h.Enqueue(1, 0,
                        2 + static_cast<std::uint32_t>(rng.NextBelow(8)),
                        0);
            light_enqueued += 1;
        }
        x.h.Tick();
    }
    const std::uint64_t light_completed = static_cast<std::uint64_t>(
        std::count(x.h.completed_threads().begin(),
                   x.h.completed_threads().end(), ThreadId{1}));
    // Every light request except at most the last in-flight one retired
    // while the streamer was still hammering the bank.
    EXPECT_GE(light_completed + 1, light_enqueued);
    // The streamer re-blacklists after every clear: events keep accruing.
    const auto stats = x.bliss->Stats();
    for (const auto& [name, value] : stats) {
        if (name == "blacklist_events") {
            EXPECT_GE(value, 3.0);
        }
        if (name == "blacklist_clearings") {
            EXPECT_GE(value, 2.0);
        }
    }
}

TEST(Bliss, MemoizedPicksCrossCheckAcrossBlacklistTransitions)
{
    // verify_indexed_selection recomputes every pick with a full scan and
    // asserts agreement — driving random traffic across many blacklist
    // sets and interval clears proves InvalidateBankPicks() is called on
    // every comparator-visible transition (memo-epoch soundness).
    ControllerConfig config = ControllerHarness::DefaultConfig();
    config.verify_indexed_selection = true;
    BlissHarness x(BlissConfig{4, 500}, 4, config);
    Rng rng(0xB1155EED);
    for (int round = 0; round < 3000; ++round) {
        if (x.h.controller().pending_reads() < 100 &&
            x.h.controller().pending_writes() < 50) {
            // Bias toward thread 0 so blacklisting actually triggers.
            const ThreadId thread = static_cast<ThreadId>(
                rng.NextBool(0.5) ? 0 : rng.NextBelow(4));
            x.h.Enqueue(thread,
                        static_cast<std::uint32_t>(rng.NextBelow(8)),
                        static_cast<std::uint32_t>(rng.NextBelow(4)),
                        static_cast<std::uint32_t>(rng.NextBelow(32)),
                        rng.NextBool(0.2));
        }
        x.h.Tick(static_cast<std::uint64_t>(rng.NextBelow(4)));
    }
    x.h.RunUntilIdle(200000);
    EXPECT_EQ(x.h.controller().pending_reads(), 0u);
    EXPECT_EQ(x.h.controller().pending_writes(), 0u);
    EXPECT_GE(x.bliss->Stats()[0].second, 1.0); // blacklist_events
}

TEST(Bliss, FactoryBuildsAndParsesBliss)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kBliss;
    EXPECT_EQ(MakeScheduler(config)->name(), "BLISS");
    SchedulerKind parsed = SchedulerKind::kFrFcfs;
    ASSERT_TRUE(ParseSchedulerKind("BLISS", parsed));
    EXPECT_EQ(parsed, SchedulerKind::kBliss);
    const auto kinds = AllSchedulerKinds();
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), SchedulerKind::kBliss),
              kinds.end());
}

TEST(Bliss, InvalidConfigIsFatal)
{
    EXPECT_THROW(BlissScheduler(BlissConfig{0, 10000}), ConfigError);
    EXPECT_THROW(BlissScheduler(BlissConfig{4, 0}), ConfigError);
}

} // namespace
} // namespace parbs
