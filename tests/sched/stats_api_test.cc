/** @file Tests for the Scheduler::Stats() diagnostics API. */

#include <gtest/gtest.h>

#include <map>

#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

std::map<std::string, double>
AsMap(const Scheduler& scheduler)
{
    std::map<std::string, double> out;
    for (const auto& [key, value] : scheduler.Stats()) {
        out[key] = value;
    }
    return out;
}

TEST(SchedulerStats, BaseSchedulersReportNothing)
{
    for (SchedulerKind kind : {SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                               SchedulerKind::kNfq}) {
        SchedulerConfig config;
        config.kind = kind;
        EXPECT_TRUE(MakeScheduler(config)->Stats().empty())
            << SchedulerKindName(kind);
    }
}

TEST(SchedulerStats, ParBsReportsBatching)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kParBs;
    ControllerHarness h(MakeScheduler(config));
    h.Enqueue(0, 0, 1);
    h.Enqueue(1, 1, 1);
    h.RunUntilIdle();
    const auto stats = AsMap(h.controller().scheduler());
    ASSERT_TRUE(stats.count("batches_formed"));
    EXPECT_GE(stats.at("batches_formed"), 1.0);
    EXPECT_DOUBLE_EQ(stats.at("avg_batch_size"), 2.0);
    EXPECT_DOUBLE_EQ(stats.at("marked_outstanding"), 0.0);
    EXPECT_DOUBLE_EQ(stats.at("marking_cap"), 5.0);
}

TEST(SchedulerStats, AdaptiveAddsAdaptationCount)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kParBsAdaptive;
    ControllerHarness h(MakeScheduler(config));
    h.Enqueue(0, 0, 1);
    h.RunUntilIdle();
    const auto stats = AsMap(h.controller().scheduler());
    EXPECT_TRUE(stats.count("adaptations"));
    EXPECT_TRUE(stats.count("batches_formed"));
}

TEST(SchedulerStats, StfmReportsSlowdownsAndDutyCycle)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kStfm;
    ControllerHarness h(MakeScheduler(config), 3);
    h.Enqueue(0, 0, 1);
    h.Enqueue(1, 0, 2);
    h.RunUntilIdle();
    const auto stats = AsMap(h.controller().scheduler());
    ASSERT_TRUE(stats.count("estimated_unfairness"));
    EXPECT_GE(stats.at("estimated_unfairness"), 1.0);
    ASSERT_TRUE(stats.count("fairness_mode_fraction"));
    EXPECT_GE(stats.at("fairness_mode_fraction"), 0.0);
    EXPECT_LE(stats.at("fairness_mode_fraction"), 1.0);
    EXPECT_TRUE(stats.count("slowdown_t0"));
    EXPECT_TRUE(stats.count("slowdown_t1"));
    EXPECT_TRUE(stats.count("slowdown_t2"));
}

TEST(SchedulerStats, BlissReportsBlacklisting)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kBliss;
    ControllerHarness h(MakeScheduler(config), 2);
    // One thread streams enough row hits to cross the blacklist
    // threshold (4 consecutive served requests).
    for (std::uint32_t column = 0; column < 8; ++column) {
        h.Enqueue(0, 0, 1, column);
    }
    h.RunUntilIdle();
    const auto stats = AsMap(h.controller().scheduler());
    ASSERT_TRUE(stats.count("blacklist_events"));
    EXPECT_GE(stats.at("blacklist_events"), 1.0);
    ASSERT_TRUE(stats.count("blacklisted_now"));
    EXPECT_GE(stats.at("blacklisted_now"), 1.0);
    EXPECT_DOUBLE_EQ(stats.at("blacklist_threshold"), 4.0);
    EXPECT_TRUE(stats.count("blacklist_clearings"));
}

} // namespace
} // namespace parbs
