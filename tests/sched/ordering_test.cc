/** @file Focused ordering tests for the two-level (request-level)
 *  selection semantics and the FR-FCFS / FCFS baselines. */

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/fcfs.hh"
#include "sched/frfcfs.hh"
#include "sched/parbs_sched.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

std::size_t
PositionOf(const std::vector<RequestId>& done, RequestId id)
{
    return static_cast<std::size_t>(
        std::find(done.begin(), done.end(), id) - done.begin());
}

TEST(TwoLevelSelection, BankTopRequestBlocksLowerPriorityCommands)
{
    // FCFS: the oldest request owns its bank.  While its precharge is
    // blocked by tRAS, a younger request to the same bank must NOT issue
    // commands, even though its own next command would be legal.
    ControllerHarness h(std::make_unique<FcfsScheduler>());
    h.Enqueue(0, 0, 1); // Opens row 1.
    h.Tick(2);          // ACT issued; row opening.
    const RequestId old_conflict = h.Enqueue(1, 0, 2);
    const RequestId young_hit = h.Enqueue(2, 0, 1);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 3u);
    // Strict per-bank order despite the young request being a row hit.
    EXPECT_LT(PositionOf(done, old_conflict), PositionOf(done, young_hit));
}

TEST(TwoLevelSelection, OtherBanksProceedWhileABankIsBlocked)
{
    // The per-bank structure must not serialize across banks: while bank
    // 0's top request waits on tRAS, bank 1 services its own requests.
    ControllerHarness h(std::make_unique<FcfsScheduler>());
    h.Enqueue(0, 0, 1);
    h.Tick(2);
    h.Enqueue(1, 0, 2); // Blocked behind bank 0's tRAS.
    const RequestId other_bank = h.Enqueue(2, 1, 5);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 3u);
    // The other-bank request finishes before bank 0's conflict.
    EXPECT_LT(PositionOf(done, other_bank),
              PositionOf(done, h.completed().back()));
    EXPECT_LE(h.now(), 80u); // No global serialization.
}

TEST(TwoLevelSelection, FrFcfsRowHitStreamCapturesBank)
{
    // The paper's capture behaviour: a continuous row-hit stream defers an
    // older conflicting request indefinitely (within the test horizon).
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    std::uint32_t column = 0;
    for (int i = 0; i < 20; ++i) {
        h.Enqueue(0, 0, 1, column++ % 32);
    }
    h.Tick(10); // Stream in service; row 1 open.
    const RequestId victim = h.Enqueue(1, 0, 2);
    // Keep replenishing the stream for 500 cycles.
    for (int i = 0; i < 500; ++i) {
        if (h.controller().pending_reads() < 30) {
            h.Enqueue(0, 0, 1, column++ % 32);
        }
        h.Tick();
    }
    // The victim is still waiting: every serviced request was a hit.
    EXPECT_EQ(std::count(h.completed().begin(), h.completed().end(),
                         victim),
              0);
    h.RunUntilIdle();
    EXPECT_NE(std::count(h.completed().begin(), h.completed().end(),
                         victim),
              0);
}

TEST(TwoLevelSelection, FrFcfsOldestFirstAmongConflicts)
{
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    // Three conflicting requests from different threads to one bank.
    const RequestId a = h.Enqueue(0, 0, 1);
    const RequestId b = h.Enqueue(1, 0, 2);
    const RequestId c = h.Enqueue(2, 0, 3);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], a);
    EXPECT_EQ(done[1], b);
    EXPECT_EQ(done[2], c);
}

TEST(TwoLevelSelection, ParBsMarkedRequestOwnsItsBank)
{
    // A marked request that is timing-blocked still keeps unmarked
    // requests out of its bank — the strict marked-first semantics of the
    // batching framework.
    ControllerHarness h(std::make_unique<ParBsScheduler>(ParBsConfig{}));
    h.Enqueue(0, 0, 1);
    h.Tick(2); // Batch 1: row 1 opening for thread 0.
    // Batch 1 still running; thread 1's request arrives unmarked and
    // conflicts; thread 0's marked request is being serviced.
    const RequestId unmarked = h.Enqueue(1, 0, 2);
    // Replenish thread 0 with unmarked same-row requests too: neither may
    // overtake... but once the batch drains, a new batch marks both.
    const RequestId unmarked_hit = h.Enqueue(0, 0, 1, 3);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 3u);
    // The original marked request completes first.
    EXPECT_LT(PositionOf(done, done[0]), PositionOf(done, unmarked));
    static_cast<void>(unmarked_hit);
}

TEST(TwoLevelSelection, WritesServicedOnlyWhenNoReadInTheirBankPool)
{
    // Strict read-over-write at the pool level: a lone write to a *free*
    // bank still waits while any read can issue, because the read pool is
    // consulted first.
    ControllerHarness h(std::make_unique<FrFcfsScheduler>());
    h.Enqueue(0, 5, 9, 0, true); // Write to idle bank 5.
    std::uint32_t column = 0;
    // A stream of reads elsewhere keeps winning the command slot whenever
    // one is ready; the write slips into genuinely idle cycles only.
    for (int i = 0; i < 10; ++i) {
        h.Enqueue(1, 0, 1, column++ % 32);
    }
    h.RunUntilIdle();
    EXPECT_EQ(h.controller().thread_stats(0).writes_completed, 1u);
    EXPECT_EQ(h.controller().thread_stats(1).reads_completed, 10u);
}

TEST(TwoLevelSelection, RefreshPendingRankRejectsNewWork)
{
    ControllerConfig config;
    config.enable_refresh = true;
    dram::TimingParams timing = test::TestTiming();
    timing.tREFI = 60; // Short, but still longer than tRFC (51).
    ControllerHarness h(std::make_unique<FrFcfsScheduler>(), 2, config,
                        timing);
    // Arrive exactly when the refresh becomes due.
    h.Tick(60);
    h.Enqueue(0, 0, 1);
    h.Tick(3);
    // Nothing issued for the request yet: the rank must refresh first.
    EXPECT_EQ(h.completed().size(), 0u);
    h.RunUntilIdle();
    EXPECT_EQ(h.completed().size(), 1u);
    EXPECT_GE(h.controller().commands_issued(dram::CommandType::kRefresh),
              1u);
}

} // namespace
} // namespace parbs
