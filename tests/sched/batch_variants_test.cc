/** @file Tests for static (time-based) and empty-slot batching variants and
 *  the alternative within-batch ranking policies. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "sched/batch_variants.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

TEST(StaticBatching, MarksOnFixedPeriod)
{
    auto owned = std::make_unique<StaticBatchScheduler>(ParBsConfig{}, 50);
    StaticBatchScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));

    h.Enqueue(0, 0, 1);
    h.Tick();
    EXPECT_EQ(scheduler->batch_stats().batches_formed, 1u);

    // Requests arriving mid-interval stay unmarked until the period tick,
    // even if the previous batch already drained.
    h.RunUntilIdle();
    for (int i = 0; i < 6; ++i) {
        h.Enqueue(0, 1, 1 + i); // Same-bank conflicts: slow to drain.
    }
    h.Tick();
    EXPECT_EQ(scheduler->batch_stats().batches_formed, 1u);
    EXPECT_EQ(scheduler->marked_outstanding(), 0u);

    while (h.now() < 51) {
        h.Tick();
    }
    EXPECT_EQ(scheduler->batch_stats().batches_formed, 2u);
    EXPECT_GT(scheduler->marked_outstanding(), 0u);
}

TEST(StaticBatching, ExistingMarksPersistAndConsumeCap)
{
    ParBsConfig config;
    config.marking_cap = 2;
    auto owned = std::make_unique<StaticBatchScheduler>(config, 10);
    StaticBatchScheduler* scheduler = owned.get();
    // Narrow timing is irrelevant; just stack requests in one bank so the
    // first interval's marks are still outstanding at the second interval.
    ControllerHarness h(std::move(owned));
    for (int i = 0; i < 6; ++i) {
        h.Enqueue(0, 0, 1 + i); // All conflicts: slow to drain.
    }
    h.Tick();
    EXPECT_EQ(scheduler->marked_outstanding(), 2u);
    // Second interval: at most cap(2) marked per (thread, bank) TOTAL,
    // counting survivors, so no new marks while both survive.
    h.Tick(10);
    EXPECT_LE(scheduler->marked_outstanding(), 2u);
}

TEST(StaticBatching, ZeroDurationRejected)
{
    EXPECT_THROW(StaticBatchScheduler(ParBsConfig{}, 0), ConfigError);
}

TEST(StaticBatching, Name)
{
    EXPECT_EQ(StaticBatchScheduler(ParBsConfig{}, 3200).name(),
              "PAR-BS(st-3200)");
}

TEST(EslotBatching, LateArrivalsJoinIfSlotsFree)
{
    ParBsConfig config;
    config.marking_cap = 3;
    auto owned = std::make_unique<EslotBatchScheduler>(config);
    EslotBatchScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));

    h.Enqueue(0, 0, 1);
    h.Tick(); // Batch forms: thread 0 used 1 of its 3 slots in bank 0.
    EXPECT_EQ(scheduler->marked_outstanding(), 1u);

    h.Enqueue(0, 0, 1, 1); // Late arrival, slot free: joins the batch.
    EXPECT_EQ(scheduler->marked_outstanding(), 2u);

    h.Enqueue(0, 0, 1, 2); // Third: uses the last slot.
    EXPECT_EQ(scheduler->marked_outstanding(), 3u);

    h.Enqueue(0, 0, 1, 3); // Cap reached: must wait for the next batch.
    EXPECT_EQ(scheduler->marked_outstanding(), 3u);
}

TEST(EslotBatching, LateWritesDoNotJoin)
{
    auto owned = std::make_unique<EslotBatchScheduler>(ParBsConfig{});
    EslotBatchScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    h.Enqueue(0, 0, 1);
    h.Tick();
    h.Enqueue(0, 1, 1, 0, true);
    EXPECT_EQ(scheduler->marked_outstanding(), 1u);
}

TEST(EslotBatching, NoJoinWithoutOpenBatch)
{
    auto owned = std::make_unique<EslotBatchScheduler>(ParBsConfig{});
    EslotBatchScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    // No batch yet: the request queues unmarked; the next cycle's batch
    // formation picks it up.
    h.Enqueue(0, 0, 1);
    EXPECT_EQ(scheduler->marked_outstanding(), 0u);
    h.Tick();
    EXPECT_EQ(scheduler->marked_outstanding(), 1u);
}

TEST(RankingVariants, TotalMaxOrdersByTotalFirst)
{
    ParBsConfig config;
    config.ranking = RankingPolicy::kTotalMax;
    auto owned = std::make_unique<ParBsScheduler>(config);
    ParBsScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    // Thread 0: total 3 spread (max 1).  Thread 1: total 2 in one bank
    // (max 2).  Max-Total would rank thread 0 first; Total-Max ranks
    // thread 1 first.
    h.Enqueue(0, 0, 1);
    h.Enqueue(0, 1, 1);
    h.Enqueue(0, 2, 1);
    h.Enqueue(1, 3, 1, 0);
    h.Enqueue(1, 3, 1, 1);
    h.Tick();
    EXPECT_LT(scheduler->ThreadRank(1), scheduler->ThreadRank(0));
}

TEST(RankingVariants, RoundRobinRotatesAcrossBatches)
{
    ParBsConfig config;
    config.ranking = RankingPolicy::kRoundRobin;
    auto owned = std::make_unique<ParBsScheduler>(config);
    ParBsScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));

    h.Enqueue(0, 0, 1);
    h.Enqueue(1, 1, 1);
    h.Tick();
    const std::uint32_t first_rank0 = scheduler->ThreadRank(0);
    h.RunUntilIdle();
    h.Enqueue(0, 0, 2);
    h.Enqueue(1, 1, 2);
    h.Tick();
    EXPECT_NE(scheduler->ThreadRank(0), first_rank0);
}

TEST(RankingVariants, RandomIsDeterministicPerSeed)
{
    auto ranks_for_seed = [](std::uint64_t seed) {
        ParBsConfig config;
        config.ranking = RankingPolicy::kRandom;
        config.seed = seed;
        auto owned = std::make_unique<ParBsScheduler>(config);
        ParBsScheduler* scheduler = owned.get();
        ControllerHarness h(std::move(owned));
        std::vector<std::uint32_t> ranks;
        for (int batch = 0; batch < 6; ++batch) {
            h.Enqueue(0, 0, 1 + batch);
            h.Enqueue(1, 1, 1 + batch);
            h.Tick();
            ranks.push_back(scheduler->ThreadRank(0));
            h.RunUntilIdle();
        }
        return ranks;
    };
    EXPECT_EQ(ranks_for_seed(5), ranks_for_seed(5));
}

TEST(RankingVariants, NoRankFcfsIgnoresRanking)
{
    // Under no-rank FCFS within the batch, the light thread gets no boost:
    // the heavy thread's older requests are serviced first in each bank.
    ParBsConfig config;
    config.ranking = RankingPolicy::kNoRankFcfs;
    ControllerHarness h(std::make_unique<ParBsScheduler>(config));
    // Heavy thread first: two conflicting requests per bank.
    std::vector<RequestId> heavy;
    for (std::uint32_t bank = 0; bank < 2; ++bank) {
        heavy.push_back(h.Enqueue(0, bank, 10));
        heavy.push_back(h.Enqueue(0, bank, 11));
    }
    // Light thread (max-bank-load 1): would be ranked first by Max-Total.
    const RequestId light_a = h.Enqueue(1, 0, 20);
    const RequestId light_b = h.Enqueue(1, 1, 20);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 6u);
    const auto pos = [&](RequestId id) {
        return std::find(done.begin(), done.end(), id) - done.begin();
    };
    for (RequestId id : heavy) {
        EXPECT_LT(pos(id), pos(light_a));
        EXPECT_LT(pos(id), pos(light_b));
    }
}

TEST(RankingVariants, MaxTotalBoostsLightThreadInSameScenario)
{
    // The control for the test above: with Max-Total ranking the light
    // thread's requests overtake the heavy thread's older ones.
    ControllerHarness h(std::make_unique<ParBsScheduler>(ParBsConfig{}));
    for (std::uint32_t bank = 0; bank < 2; ++bank) {
        h.Enqueue(0, bank, 10);
        h.Enqueue(0, bank, 11);
    }
    const RequestId light_a = h.Enqueue(1, 0, 20);
    const RequestId light_b = h.Enqueue(1, 1, 20);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 6u);
    const auto pos = [&](RequestId id) {
        return std::find(done.begin(), done.end(), id) - done.begin();
    };
    // The light thread finishes within the first two service slots of its
    // banks: ahead of the heavy thread's second request everywhere.
    EXPECT_LT(pos(light_a), 4);
    EXPECT_LT(pos(light_b), 4);
}

TEST(RankingVariants, NoRankFrFcfsKeepsRowHitRule)
{
    ParBsConfig config;
    config.ranking = RankingPolicy::kNoRankFrFcfs;
    ControllerHarness h(std::make_unique<ParBsScheduler>(config));
    h.Enqueue(0, 0, 1);
    h.RunUntilIdle();
    const RequestId conflict = h.Enqueue(1, 0, 2);
    const RequestId hit = h.Enqueue(2, 0, 1);
    h.RunUntilIdle();
    ASSERT_EQ(h.completed().size(), 3u);
    EXPECT_EQ(h.completed()[1], hit);
    EXPECT_EQ(h.completed()[2], conflict);
}

} // namespace
} // namespace parbs
