/** @file Tests for PAR-BS: batching (Rule 1), prioritization (Rule 2),
 *  Max-Total ranking (Rule 3), and Marking-Cap behaviour. */

#include <gtest/gtest.h>

#include "sched/parbs_sched.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

/** Harness wrapper that keeps a typed handle to the PAR-BS scheduler. */
struct ParBsHarness {
    explicit ParBsHarness(ParBsConfig config = {},
                          std::uint32_t threads = 4)
        : harness(MakeScheduler(config, &scheduler), threads)
    {
    }

    static std::unique_ptr<Scheduler>
    MakeScheduler(const ParBsConfig& config, ParBsScheduler** out)
    {
        auto scheduler = std::make_unique<ParBsScheduler>(config);
        *out = scheduler.get();
        return scheduler;
    }

    ParBsScheduler* scheduler = nullptr;
    ControllerHarness harness;
};

TEST(ParBs, BatchFormsWhenRequestsArrive)
{
    ParBsHarness h;
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 0u);
    h.harness.Enqueue(0, 0, 1);
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 1u);
    EXPECT_EQ(h.scheduler->marked_outstanding(), 1u);
}

TEST(ParBs, EmptyBufferFormsNoBatches)
{
    ParBsHarness h;
    h.harness.Tick(100);
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 0u);
}

TEST(ParBs, NewBatchOnlyAfterAllMarkedServiced)
{
    ParBsHarness h;
    h.harness.Enqueue(0, 0, 1);
    h.harness.Enqueue(1, 1, 1);
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 1u);
    EXPECT_EQ(h.scheduler->marked_outstanding(), 2u);
    // A late request does not join or restart the batch...
    h.harness.Enqueue(2, 2, 1);
    h.harness.Tick(2);
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 1u);
    h.harness.RunUntilIdle();
    // ...but since its bank held no marked requests, it was serviced
    // opportunistically within batch 1 ("PAR-BS neither wastes bandwidth
    // nor unnecessarily delays requests"), so no second batch was needed.
    EXPECT_EQ(h.scheduler->batch_stats().batches_formed, 1u);
    EXPECT_EQ(h.harness.completed().size(), 3u);
}

TEST(ParBs, LateRequestInContendedBankWaitsForNextBatch)
{
    ParBsHarness h;
    // Batch 1: five same-bank conflicts from thread 0 (slow to drain).
    for (int i = 0; i < 5; ++i) {
        h.harness.Enqueue(0, 0, 1 + i);
    }
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->marked_outstanding(), 5u);
    // Late request from thread 1 to the *same* bank: unmarked, and the
    // bank still holds marked requests, so it must wait out the batch.
    const RequestId late = h.harness.Enqueue(1, 0, 50);
    h.harness.RunUntilIdle();
    ASSERT_EQ(h.harness.completed().size(), 6u);
    EXPECT_EQ(h.harness.completed().back(), late);
}

TEST(ParBs, MarkingCapLimitsPerThreadPerBank)
{
    ParBsConfig config;
    config.marking_cap = 2;
    ParBsHarness h(config);
    for (int i = 0; i < 5; ++i) {
        h.harness.Enqueue(0, 0, 1, i); // 5 requests, same bank.
    }
    h.harness.Enqueue(0, 1, 1); // Different bank: own cap.
    h.harness.Tick();
    // 2 marked in bank 0 + 1 in bank 1.
    EXPECT_EQ(h.scheduler->marked_outstanding(), 3u);
}

TEST(ParBs, NoCapMarksEverything)
{
    ParBsConfig config;
    config.marking_cap = 0;
    ParBsHarness h(config);
    for (int i = 0; i < 7; ++i) {
        h.harness.Enqueue(0, 0, 1, i);
    }
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->marked_outstanding(), 7u);
}

TEST(ParBs, MarkedRequestsBeatUnmarkedRowHits)
{
    // Rule 2.1 (BS) dominates Rule 2.2 (RH): a marked row-conflict is
    // serviced before an unmarked row-hit in the same bank.
    ParBsHarness h;
    const RequestId opener = h.harness.Enqueue(0, 0, 1);
    h.harness.Tick(); // Batch 1: just the opener.
    h.harness.RunUntilIdle();

    // Seed the next batch: a conflict from thread 1.
    const RequestId marked_conflict = h.harness.Enqueue(1, 0, 2);
    h.harness.Tick(); // Batch 2 forms with the conflict marked.
    // Now a row-hit arrives from thread 2 (row 1 may still be open).
    const RequestId unmarked_hit = h.harness.Enqueue(2, 0, 1);
    h.harness.RunUntilIdle();

    ASSERT_EQ(h.harness.completed().size(), 3u);
    EXPECT_EQ(h.harness.completed()[0], opener);
    EXPECT_EQ(h.harness.completed()[1], marked_conflict);
    EXPECT_EQ(h.harness.completed()[2], unmarked_hit);
}

TEST(ParBs, WithinBatchRowHitFirst)
{
    ParBsHarness h;
    // Open row 1 in bank 0 via a first batch.
    h.harness.Enqueue(0, 0, 1);
    h.harness.RunUntilIdle();
    // Next batch: an older conflict and a younger hit, both marked.
    const RequestId conflict = h.harness.Enqueue(1, 0, 2);
    const RequestId hit = h.harness.Enqueue(2, 0, 1);
    h.harness.RunUntilIdle();
    ASSERT_EQ(h.harness.completed().size(), 3u);
    EXPECT_EQ(h.harness.completed()[1], hit);
    EXPECT_EQ(h.harness.completed()[2], conflict);
}

TEST(ParBs, MaxTotalRankingMaxRule)
{
    ParBsHarness h;
    // Thread 0: one request per bank in 3 banks (max-bank-load 1).
    h.harness.Enqueue(0, 0, 10);
    h.harness.Enqueue(0, 1, 10);
    h.harness.Enqueue(0, 2, 10);
    // Thread 1: three requests in one bank (max-bank-load 3).
    h.harness.Enqueue(1, 3, 10, 0);
    h.harness.Enqueue(1, 3, 10, 1);
    h.harness.Enqueue(1, 3, 10, 2);
    h.harness.Tick();
    EXPECT_LT(h.scheduler->ThreadRank(0), h.scheduler->ThreadRank(1));
}

TEST(ParBs, MaxTotalRankingTotalTieBreak)
{
    ParBsHarness h;
    // Both threads have max-bank-load 2; thread 1 has the larger total.
    h.harness.Enqueue(0, 0, 10, 0);
    h.harness.Enqueue(0, 0, 10, 1);
    h.harness.Enqueue(1, 1, 10, 0);
    h.harness.Enqueue(1, 1, 10, 1);
    h.harness.Enqueue(1, 2, 10, 0);
    h.harness.Tick();
    EXPECT_LT(h.scheduler->ThreadRank(0), h.scheduler->ThreadRank(1));
}

TEST(ParBs, ThreadsWithoutMarkedRequestsGetWorstRank)
{
    ParBsHarness h;
    h.harness.Enqueue(0, 0, 10);
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->ThreadRank(3), 4u);
    EXPECT_LT(h.scheduler->ThreadRank(0), 4u);
}

TEST(ParBs, RankingOrdersServiceAcrossBanks)
{
    // The highest-ranked thread's requests go first in *every* bank, which
    // is exactly what preserves its bank-level parallelism.
    ParBsHarness h;
    // Thread 1 (intensive): two requests in each of banks 0 and 1.
    h.harness.Enqueue(1, 0, 20, 0);
    h.harness.Enqueue(1, 0, 20, 1);
    h.harness.Enqueue(1, 1, 20, 0);
    h.harness.Enqueue(1, 1, 20, 1);
    // Thread 0 (light): one request in each bank, arriving later.
    const RequestId a = h.harness.Enqueue(0, 0, 30);
    const RequestId b = h.harness.Enqueue(0, 1, 30);
    h.harness.RunUntilIdle();
    ASSERT_EQ(h.harness.completed().size(), 6u);
    // Thread 0's two requests complete before any of thread 1's.
    EXPECT_TRUE((h.harness.completed()[0] == a &&
                 h.harness.completed()[1] == b) ||
                (h.harness.completed()[0] == b &&
                 h.harness.completed()[1] == a));
}

TEST(ParBs, UnmarkedServicedWhenBankHasNoMarked)
{
    ParBsHarness h;
    // Batch forms with thread 0's request to bank 0.
    h.harness.Enqueue(0, 0, 1);
    h.harness.Tick();
    // Thread 1's unmarked request to bank 5: no marked request there, so
    // it is serviced during the current batch, not postponed.
    h.harness.Enqueue(1, 5, 1);
    h.harness.RunUntilIdle(2000);
    EXPECT_EQ(h.harness.completed().size(), 2u);
    EXPECT_LE(h.harness.now(), 100u);
}

TEST(ParBs, BatchStatsAccumulate)
{
    ParBsHarness h;
    for (int batch = 0; batch < 3; ++batch) {
        h.harness.Enqueue(0, 0, 1 + batch);
        h.harness.Enqueue(1, 1, 1 + batch);
        h.harness.RunUntilIdle();
    }
    const BatchStats& stats = h.scheduler->batch_stats();
    EXPECT_EQ(stats.batches_formed, 3u);
    EXPECT_EQ(stats.marked_total, 6u);
    EXPECT_NEAR(stats.AverageBatchSize(), 2.0, 1e-9);
    EXPECT_GT(stats.AverageBatchDuration(), 0.0);
}

TEST(ParBs, WritesAreNeverMarked)
{
    ParBsHarness h;
    h.harness.Enqueue(0, 0, 1, 0, true);
    h.harness.Enqueue(0, 1, 1, 0, true);
    h.harness.Tick();
    EXPECT_EQ(h.scheduler->marked_outstanding(), 0u);
    h.harness.RunUntilIdle();
    EXPECT_EQ(h.harness.controller().thread_stats(0).writes_completed, 2u);
}

TEST(ParBs, NameReflectsConfiguration)
{
    EXPECT_EQ(ParBsScheduler(ParBsConfig{}).name(), "PAR-BS");
    ParBsConfig custom;
    custom.marking_cap = 3;
    EXPECT_EQ(ParBsScheduler(custom).name(), "PAR-BS(max-total,cap=3)");
    ParBsConfig nocap;
    nocap.marking_cap = 0;
    EXPECT_EQ(ParBsScheduler(nocap).name(), "PAR-BS(max-total,cap=none)");
}

TEST(ParBs, RankingPolicyNames)
{
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kMaxTotal), "max-total");
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kTotalMax), "total-max");
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kRandom), "random");
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kRoundRobin),
                 "round-robin");
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kNoRankFrFcfs),
                 "no-rank-frfcfs");
    EXPECT_STREQ(RankingPolicyName(RankingPolicy::kNoRankFcfs),
                 "no-rank-fcfs");
}

} // namespace
} // namespace parbs
