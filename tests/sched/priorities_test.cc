/** @file Tests for Section 5: system-level thread priorities and purely
 *  opportunistic service. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.hh"
#include "sched/parbs_sched.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

struct PriorityHarness {
    explicit PriorityHarness(std::uint32_t threads = 4)
    {
        auto owned = std::make_unique<ParBsScheduler>(ParBsConfig{});
        scheduler = owned.get();
        harness = std::make_unique<ControllerHarness>(std::move(owned),
                                                      threads);
    }
    ParBsScheduler* scheduler = nullptr;
    std::unique_ptr<ControllerHarness> harness;
};

TEST(Priorities, PriorityXMarkedEveryXthBatch)
{
    PriorityHarness p;
    p.harness->controller().scheduler().SetThreadPriority(1, 2);

    // Batch 0 (index 0): both threads markable (0 % 2 == 0).
    p.harness->Enqueue(0, 0, 1);
    p.harness->Enqueue(1, 1, 1);
    p.harness->Tick();
    EXPECT_EQ(p.scheduler->marked_outstanding(), 2u);
    p.harness->RunUntilIdle();

    // Batch 1: priority-2 thread sits this one out.
    p.harness->Enqueue(0, 0, 2);
    p.harness->Enqueue(1, 1, 2);
    p.harness->Tick();
    EXPECT_EQ(p.scheduler->marked_outstanding(), 1u);
    p.harness->RunUntilIdle();

    // Batch 2: both markable again.
    p.harness->Enqueue(0, 0, 3);
    p.harness->Enqueue(1, 1, 3);
    p.harness->Tick();
    EXPECT_EQ(p.scheduler->marked_outstanding(), 2u);
}

TEST(Priorities, OpportunisticNeverMarked)
{
    PriorityHarness p;
    p.harness->controller().scheduler().SetThreadPriority(
        2, kOpportunisticPriority);
    for (int batch = 0; batch < 4; ++batch) {
        p.harness->Enqueue(2, 0, 1 + batch);
        p.harness->Enqueue(0, 1, 1 + batch);
        p.harness->Tick();
        // Only thread 0's request is ever marked.
        EXPECT_EQ(p.scheduler->marked_outstanding(), 1u);
        p.harness->RunUntilIdle();
    }
    // Opportunistic requests are still serviced (when banks are free).
    EXPECT_EQ(p.harness->controller().thread_stats(2).reads_completed, 4u);
}

TEST(Priorities, HigherPriorityServicedFirstWithinBatch)
{
    PriorityHarness p;
    p.harness->controller().scheduler().SetThreadPriority(0, 2);
    p.harness->controller().scheduler().SetThreadPriority(1, 1);
    // Same bank, same batch; thread 0 older but lower priority.
    const RequestId low = p.harness->Enqueue(0, 0, 1);
    const RequestId high = p.harness->Enqueue(1, 0, 2);
    p.harness->RunUntilIdle();
    ASSERT_EQ(p.harness->completed().size(), 2u);
    EXPECT_EQ(p.harness->completed()[0], high);
    EXPECT_EQ(p.harness->completed()[1], low);
}

TEST(Priorities, PriorityBeatsRowHitWithinBatch)
{
    // The PRIORITY rule sits between BS and RH: a high-priority conflict
    // beats a low-priority row-hit.
    PriorityHarness p;
    p.harness->controller().scheduler().SetThreadPriority(0, 2);
    p.harness->controller().scheduler().SetThreadPriority(1, 1);
    // Open row 1 (batch 1, thread 0's request — both threads priority set
    // already but only thread 0 request present).
    p.harness->Enqueue(0, 0, 1);
    p.harness->RunUntilIdle();
    // Batch 2 needs both markable: batch index 1, thread 0 priority 2 is
    // NOT markable in odd batches, so run one more dummy batch first.
    p.harness->Enqueue(1, 1, 9);
    p.harness->RunUntilIdle();
    // Batch index 2: both markable.
    const RequestId hit_low = p.harness->Enqueue(0, 0, 1);
    const RequestId conflict_high = p.harness->Enqueue(1, 0, 2);
    p.harness->RunUntilIdle();
    const auto& done = p.harness->completed();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[2], conflict_high);
    EXPECT_EQ(done[3], hit_low);
}

TEST(Priorities, OpportunisticLosesToUnmarked)
{
    PriorityHarness p;
    p.harness->controller().scheduler().SetThreadPriority(
        0, kOpportunisticPriority);
    // Form a batch with thread 1 in bank 1 so bank 0 has no marked
    // requests; then race an opportunistic and a normal unmarked request
    // in bank 0.
    p.harness->Enqueue(1, 1, 1);
    p.harness->Tick();
    const RequestId opp = p.harness->Enqueue(0, 0, 2);
    const RequestId normal = p.harness->Enqueue(2, 0, 3);
    p.harness->RunUntilIdle();
    const auto& done = p.harness->completed();
    ASSERT_EQ(done.size(), 3u);
    // The normal thread's unmarked request beats the older opportunistic.
    const auto pos = [&](RequestId id) {
        return std::find(done.begin(), done.end(), id) - done.begin();
    };
    EXPECT_LT(pos(normal), pos(opp));
}

TEST(Priorities, InvalidWeightRejected)
{
    PriorityHarness p;
    EXPECT_THROW(
        p.harness->controller().scheduler().SetThreadWeight(0, 0.0),
        ConfigError);
    EXPECT_THROW(
        p.harness->controller().scheduler().SetThreadWeight(0, -1.0),
        ConfigError);
}

TEST(Priorities, AccessorsRoundTrip)
{
    PriorityHarness p;
    Scheduler& s = p.harness->controller().scheduler();
    s.SetThreadPriority(3, 7);
    s.SetThreadWeight(2, 4.0);
    EXPECT_EQ(s.thread_priority(3), 7u);
    EXPECT_DOUBLE_EQ(s.thread_weight(2), 4.0);
    EXPECT_EQ(s.thread_priority(0), kHighestPriority);
    EXPECT_DOUBLE_EQ(s.thread_weight(0), 1.0);
}

} // namespace
} // namespace parbs
