/** @file Tests for the adaptive Marking-Cap extension. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

struct AdaptiveHarness {
    explicit AdaptiveHarness(AdaptiveCapConfig config = {})
    {
        auto owned = std::make_unique<AdaptiveParBsScheduler>(config);
        scheduler = owned.get();
        harness = std::make_unique<ControllerHarness>(std::move(owned), 4);
    }
    AdaptiveParBsScheduler* scheduler = nullptr;
    std::unique_ptr<ControllerHarness> harness;
};

TEST(AdaptiveCap, StartsAtInitialCap)
{
    AdaptiveCapConfig config;
    config.initial_cap = 7;
    AdaptiveHarness h(config);
    EXPECT_EQ(h.scheduler->current_cap(), 7u);
    EXPECT_EQ(h.scheduler->name(), "PAR-BS(adaptive-cap)");
}

TEST(AdaptiveCap, InvalidConfigRejected)
{
    AdaptiveCapConfig bad;
    bad.min_cap = 10;
    bad.max_cap = 5;
    EXPECT_THROW(AdaptiveParBsScheduler{bad}, ConfigError);

    AdaptiveCapConfig bad2;
    bad2.initial_cap = 100;
    bad2.max_cap = 20;
    EXPECT_THROW(AdaptiveParBsScheduler{bad2}, ConfigError);

    AdaptiveCapConfig bad3;
    bad3.window_reads = 0;
    EXPECT_THROW(AdaptiveParBsScheduler{bad3}, ConfigError);
}

TEST(AdaptiveCap, LowHitRateRaisesCap)
{
    AdaptiveCapConfig config;
    config.initial_cap = 4;
    config.window_reads = 16;
    config.hit_low = 0.9;       // Nearly any traffic looks "low locality".
    config.latency_high = 1u << 30; // Never triggers.
    AdaptiveHarness h(config);
    // All-conflict traffic: the hit rate stays near zero.
    for (int i = 0; i < 80; ++i) {
        h.harness->Enqueue(static_cast<ThreadId>(i % 4),
                           static_cast<std::uint32_t>(i % 8),
                           10 + static_cast<std::uint32_t>(i));
        h.harness->Tick(6);
    }
    h.harness->RunUntilIdle();
    EXPECT_GT(h.scheduler->current_cap(), 4u);
    EXPECT_GT(h.scheduler->adaptations(), 0u);
}

TEST(AdaptiveCap, HighWorstLatencyLowersCap)
{
    AdaptiveCapConfig config;
    config.initial_cap = 8;
    config.window_reads = 16;
    config.hit_low = 0.0;    // Never raises.
    config.latency_high = 1; // Any completed read looks "too slow".
    AdaptiveHarness h(config);
    for (int i = 0; i < 80; ++i) {
        h.harness->Enqueue(static_cast<ThreadId>(i % 4),
                           static_cast<std::uint32_t>(i % 8), 10);
        h.harness->Tick(6);
    }
    h.harness->RunUntilIdle();
    EXPECT_LT(h.scheduler->current_cap(), 8u);
}

TEST(AdaptiveCap, CapStaysWithinBounds)
{
    AdaptiveCapConfig config;
    config.initial_cap = 3;
    config.min_cap = 2;
    config.max_cap = 4;
    config.window_reads = 8;
    config.latency_high = 1; // Pushes down every window.
    AdaptiveHarness h(config);
    for (int i = 0; i < 200; ++i) {
        h.harness->Enqueue(static_cast<ThreadId>(i % 4),
                           static_cast<std::uint32_t>(i % 8),
                           10 + static_cast<std::uint32_t>(i % 3));
        h.harness->Tick(5);
        EXPECT_GE(h.scheduler->current_cap(), 2u);
        EXPECT_LE(h.scheduler->current_cap(), 4u);
    }
}

TEST(AdaptiveCap, FactoryBuildsIt)
{
    SchedulerConfig config;
    config.kind = SchedulerKind::kParBsAdaptive;
    auto scheduler = MakeScheduler(config);
    EXPECT_EQ(scheduler->name(), "PAR-BS(adaptive-cap)");
    EXPECT_STREQ(SchedulerKindName(SchedulerKind::kParBsAdaptive),
                 "PAR-BS(adaptive-cap)");
}

TEST(AdaptiveCap, BatchingGuaranteesStillHold)
{
    // The adaptive variant must keep PAR-BS's starvation freedom: marked
    // requests drain and traffic completes.
    AdaptiveCapConfig config;
    config.window_reads = 32;
    AdaptiveHarness h(config);
    int issued = 0;
    for (int i = 0; i < 300; ++i) {
        if (h.harness->controller().pending_reads() < 100) {
            h.harness->Enqueue(static_cast<ThreadId>(i % 4),
                               static_cast<std::uint32_t>((i * 3) % 8),
                               static_cast<std::uint32_t>(i % 16));
            issued += 1;
        }
        h.harness->Tick(2);
    }
    h.harness->RunUntilIdle(200000);
    EXPECT_EQ(static_cast<int>(h.harness->completed().size()), issued);
    EXPECT_EQ(h.scheduler->marked_outstanding(), 0u);
}

} // namespace
} // namespace parbs
