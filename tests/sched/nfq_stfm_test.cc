/** @file Tests for the NFQ (FQ-VFTF) and STFM comparison schedulers. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "sched/nfq.hh"
#include "sched/stfm.hh"
#include "test_util.hh"

namespace parbs {
namespace {

using test::ControllerHarness;

TEST(Nfq, VirtualClockAdvancesWithRequests)
{
    auto owned = std::make_unique<NfqScheduler>();
    NfqScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    EXPECT_EQ(scheduler->VirtualClock(0, 0), 0u);
    h.Enqueue(0, 0, 1);
    const std::uint64_t after_one = scheduler->VirtualClock(0, 0);
    EXPECT_GT(after_one, 0u);
    h.Enqueue(0, 0, 1, 1);
    EXPECT_GT(scheduler->VirtualClock(0, 0), after_one);
}

TEST(Nfq, WeightScalesVirtualServiceTime)
{
    auto owned = std::make_unique<NfqScheduler>();
    NfqScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    h.controller().scheduler().SetThreadWeight(1, 4.0);
    h.Enqueue(0, 0, 1);
    h.Enqueue(1, 1, 1);
    // Heavier thread accumulates virtual time 4x slower.
    EXPECT_GT(scheduler->VirtualClock(0, 0),
              scheduler->VirtualClock(1, 1));
}

TEST(Nfq, EarliestVirtualFinishTimeWins)
{
    // Backlogged thread 0 accumulates virtual time; thread 1's first
    // request gets an earlier deadline and jumps ahead (the idleness
    // behaviour the PAR-BS paper describes).
    ControllerHarness h(std::make_unique<NfqScheduler>());
    std::vector<RequestId> backlog;
    for (int i = 0; i < 4; ++i) {
        backlog.push_back(h.Enqueue(0, 0, 1 + i)); // Conflicts.
    }
    const RequestId fresh = h.Enqueue(1, 0, 99);
    h.RunUntilIdle();
    const auto& done = h.completed();
    ASSERT_EQ(done.size(), 5u);
    const auto pos = [&](RequestId id) {
        return std::find(done.begin(), done.end(), id) - done.begin();
    };
    // The fresh thread's request finishes before the backlog's tail.
    EXPECT_LT(pos(fresh), pos(backlog[3]));
}

TEST(Nfq, RowHitProtectionWithinTras)
{
    ControllerHarness h(std::make_unique<NfqScheduler>());
    // Open row 1 with thread 0, then race a same-row hit from thread 0
    // against an earlier-deadline request of an idle thread: within tRAS
    // of the activate, the hit is protected.
    h.Enqueue(0, 0, 1);
    h.Tick(8); // ACT + READ issued; row open, still within tRAS.
    const RequestId hit = h.Enqueue(0, 0, 1, 1);
    const RequestId other = h.Enqueue(1, 0, 2);
    h.RunUntilIdle();
    const auto& done = h.completed();
    const auto pos = [&](RequestId id) {
        return std::find(done.begin(), done.end(), id) - done.begin();
    };
    EXPECT_LT(pos(hit), pos(other));
}

TEST(Stfm, StartsInFrFcfsMode)
{
    auto owned = std::make_unique<StfmScheduler>();
    StfmScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    h.Enqueue(0, 0, 1);
    h.Tick();
    EXPECT_FALSE(scheduler->fairness_mode());
    EXPECT_DOUBLE_EQ(scheduler->EstimatedUnfairness(), 1.0);
}

TEST(Stfm, SlowdownGrowsUnderInterference)
{
    auto owned = std::make_unique<StfmScheduler>();
    StfmScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    // Thread 1 queues behind thread 0's stream in the same bank.
    for (int i = 0; i < 12; ++i) {
        h.Enqueue(0, 0, 1, i % 32);
    }
    h.Enqueue(1, 0, 50);
    h.Tick(60);
    EXPECT_GT(scheduler->EstimatedSlowdown(1), 1.0);
}

TEST(Stfm, FairnessModeTriggersAboveAlpha)
{
    StfmConfig config;
    config.alpha = 1.05;
    auto owned = std::make_unique<StfmScheduler>(config);
    StfmScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    // Sustained asymmetric interference: thread 0 streams row hits,
    // thread 1's conflicting requests wait.
    for (int round = 0; round < 30; ++round) {
        h.Enqueue(0, 0, 1, round % 32);
        h.Enqueue(0, 0, 1, (round + 7) % 32);
        h.Enqueue(1, 0, 2 + round);
        h.Tick(20);
    }
    EXPECT_TRUE(scheduler->fairness_mode());
    EXPECT_GT(scheduler->EstimatedUnfairness(), 1.05);
}

TEST(Stfm, FairnessModeBoostsTheVictimMidStream)
{
    StfmConfig config;
    config.alpha = 1.05;
    auto owned = std::make_unique<StfmScheduler>(config);
    StfmScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    // The attacker keeps ~8 row-hit requests standing in bank 0; the
    // victim's lone conflicting request would wait behind the entire
    // stream under plain FR-FCFS.
    std::uint32_t column = 0;
    for (int i = 0; i < 8; ++i) {
        h.Enqueue(0, 0, 1, column++ % 32);
    }
    h.Tick(5);
    const RequestId victim = h.Enqueue(1, 0, 999);
    bool saw_fairness_mode = false;
    DramCycle victim_done = 0;
    for (int round = 0; round < 2000 && victim_done == 0; ++round) {
        if (h.controller().pending_reads() < 12) {
            h.Enqueue(0, 0, 1, column++ % 32);
        }
        h.Tick();
        saw_fairness_mode |= scheduler->fairness_mode();
        if (std::find(h.completed().begin(), h.completed().end(), victim) !=
            h.completed().end()) {
            victim_done = h.now();
        }
    }
    // STFM's slowdown estimate for the victim grows until fairness mode
    // engages and pushes the victim's request through.
    EXPECT_TRUE(saw_fairness_mode);
    ASSERT_GT(victim_done, 0u);
    EXPECT_GT(scheduler->EstimatedSlowdown(1), 1.0);
}

TEST(Stfm, InvalidConfigRejected)
{
    StfmConfig bad_alpha;
    bad_alpha.alpha = 0.9;
    EXPECT_THROW(StfmScheduler{bad_alpha}, ConfigError);
    StfmConfig bad_interval;
    bad_interval.interval_length = 0;
    EXPECT_THROW(StfmScheduler{bad_interval}, ConfigError);
}

TEST(Stfm, AgingHalvesEstimates)
{
    StfmConfig config;
    config.interval_length = 64;
    auto owned = std::make_unique<StfmScheduler>(config);
    StfmScheduler* scheduler = owned.get();
    ControllerHarness h(std::move(owned));
    for (int i = 0; i < 10; ++i) {
        h.Enqueue(0, 0, 1 + i);
        h.Enqueue(1, 0, 100 + i);
    }
    h.Tick(40);
    const double before = scheduler->EstimatedSlowdown(1);
    h.RunUntilIdle();
    h.Tick(200); // Crosses aging boundaries with no new interference.
    EXPECT_LE(scheduler->EstimatedSlowdown(1), before + 1e-9);
}

} // namespace
} // namespace parbs
