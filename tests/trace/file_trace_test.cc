/** @file Tests for file-based trace loading, saving, and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hh"
#include "trace/file_trace.hh"

namespace parbs {
namespace {

TEST(FileTrace, ParsesBasicRecords)
{
    std::istringstream in("10 R 0x1000\n3 W 4096 D\n0 R 0\n");
    const auto entries = ParseTrace(in);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].compute_instructions, 10u);
    EXPECT_FALSE(entries[0].is_write);
    EXPECT_EQ(entries[0].addr, 0x1000u);
    EXPECT_FALSE(entries[0].depends_on_prev);

    EXPECT_TRUE(entries[1].is_write);
    EXPECT_EQ(entries[1].addr, 4096u);
    EXPECT_TRUE(entries[1].depends_on_prev);

    EXPECT_EQ(entries[2].addr, 0u);
}

TEST(FileTrace, SkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n\n10 R 0x40 # trailing comment\n\n# end\n");
    const auto entries = ParseTrace(in);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].addr, 0x40u);
}

TEST(FileTrace, RejectsMalformedInput)
{
    {
        std::istringstream in("x R 0x40\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 Q 0x40\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 R\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 R zzz\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 R 0x40 X\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
}

TEST(FileTrace, ErrorMessagesNameTheLine)
{
    std::istringstream in("10 R 0x40\nbad line here\n");
    try {
        ParseTrace(in, "demo.trace");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("demo.trace:2"),
                  std::string::npos);
    }
}

TEST(FileTrace, ErrorMessagesNameTheColumn)
{
    // The bad access type 'Q' starts at column 4 of line 2.
    std::istringstream in("10 R 0x40\n20 Q 0x80\n");
    try {
        ParseTrace(in, "demo.trace");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("demo.trace:2:4"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FileTrace, ErrorColumnTracksLeadingWhitespace)
{
    std::istringstream in("   7 R bogus\n");
    try {
        ParseTrace(in, "t");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        // "bogus" starts at column 8.
        EXPECT_NE(std::string(e.what()).find("t:1:8"), std::string::npos)
            << e.what();
    }
}

TEST(FileTrace, RejectsInstructionCountOverflow)
{
    // Fits in uint64 but not uint32: must be a ConfigError, not silent
    // truncation.
    std::istringstream in("5000000000 R 0x40\n");
    try {
        ParseTrace(in, "t");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("out of range"),
                  std::string::npos)
            << e.what();
    }
    // And a value too large even for uint64 must not throw anything else.
    std::istringstream in2("99999999999999999999 R 0x40\n");
    EXPECT_THROW(ParseTrace(in2), ConfigError);
}

TEST(FileTrace, AcceptsHexAndDecimalAddresses)
{
    std::istringstream in("1 R 0XAB40\n2 W 256\n");
    const auto entries = ParseTrace(in);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].addr, 0xAB40u);
    EXPECT_EQ(entries[1].addr, 256u);
}

TEST(FileTrace, RejectsBareHexPrefixAndFusedFields)
{
    {
        std::istringstream in("0x R 0x40\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10R0x40\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 R 0x40 D D\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
    {
        std::istringstream in("10 R -5\n");
        EXPECT_THROW(ParseTrace(in), ConfigError);
    }
}

TEST(FileTrace, WriteParseRoundTrip)
{
    std::vector<TraceEntry> entries{
        {7, 0xdeadbe40, false, false},
        {0, 0x80, true, true},
        {1000000, 0x123456789ab0, false, true},
    };
    std::ostringstream out;
    WriteTrace(out, entries);
    std::istringstream in(out.str());
    const auto parsed = ParseTrace(in);
    ASSERT_EQ(parsed.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(parsed[i].compute_instructions,
                  entries[i].compute_instructions);
        EXPECT_EQ(parsed[i].addr, entries[i].addr);
        EXPECT_EQ(parsed[i].is_write, entries[i].is_write);
        EXPECT_EQ(parsed[i].depends_on_prev, entries[i].depends_on_prev);
    }
}

TEST(FileTrace, SaveAndLoadFile)
{
    const std::string path = ::testing::TempDir() + "/parbs_trace_test.txt";
    std::vector<TraceEntry> entries{{5, 0x40, false, false},
                                    {6, 0x80, true, false}};
    SaveTraceFile(path, entries);
    const auto loaded = LoadTraceFile(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[1].addr, 0x80u);
    std::remove(path.c_str());
}

TEST(FileTrace, MissingFileThrows)
{
    EXPECT_THROW(LoadTraceFile("/no/such/parbs/trace"), ConfigError);
}

TEST(FileTrace, SourceDrainsWithoutLoop)
{
    FileTraceSource source({{1, 0x40, false, false}}, false);
    EXPECT_TRUE(source.Next().has_value());
    EXPECT_FALSE(source.Next().has_value());
}

TEST(FileTrace, SourceLoopsWhenRequested)
{
    FileTraceSource source(
        {{1, 0x40, false, false}, {2, 0x80, false, false}}, true);
    for (int lap = 0; lap < 5; ++lap) {
        const auto a = source.Next();
        const auto b = source.Next();
        ASSERT_TRUE(a.has_value() && b.has_value());
        EXPECT_EQ(a->addr, 0x40u);
        EXPECT_EQ(b->addr, 0x80u);
    }
}

TEST(FileTrace, LoopingEmptyTraceRejected)
{
    EXPECT_THROW(FileTraceSource({}, true), ConfigError);
}

} // namespace
} // namespace parbs
