/** @file Tests for the trace substrate: scripted traces, the synthetic
 *  generator's statistics, and the Table 3 benchmark profiles. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/assert.hh"
#include "dram/address_mapper.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic.hh"

namespace parbs {
namespace {

dram::AddressMapper
Mapper()
{
    dram::Geometry geometry;
    geometry.channels = 1;
    geometry.ranks_per_channel = 1;
    geometry.banks_per_rank = 8;
    geometry.rows_per_bank = 16384;
    return dram::AddressMapper(geometry, true);
}

TEST(VectorTrace, DrainsInOrderThenEnds)
{
    VectorTraceSource trace({{1, 0x40, false, false},
                             {2, 0x80, true, false}});
    EXPECT_EQ(trace.Remaining(), 2u);
    auto first = trace.Next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->addr, 0x40u);
    auto second = trace.Next();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->is_write);
    EXPECT_FALSE(trace.Next().has_value());
    EXPECT_FALSE(trace.Next().has_value());
}

TEST(Synthetic, DeterministicPerSeed)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    SyntheticTraceSource a(params, mapper, 0, 4, 42);
    SyntheticTraceSource b(params, mapper, 0, 4, 42);
    for (int i = 0; i < 1000; ++i) {
        const auto ea = a.Next();
        const auto eb = b.Next();
        ASSERT_TRUE(ea.has_value() && eb.has_value());
        EXPECT_EQ(ea->addr, eb->addr);
        EXPECT_EQ(ea->compute_instructions, eb->compute_instructions);
        EXPECT_EQ(ea->is_write, eb->is_write);
        EXPECT_EQ(ea->depends_on_prev, eb->depends_on_prev);
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    SyntheticTraceSource a(params, mapper, 0, 4, 1);
    SyntheticTraceSource b(params, mapper, 0, 4, 2);
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        if (a.Next()->addr == b.Next()->addr) {
            same += 1;
        }
    }
    EXPECT_LT(same, 50);
}

TEST(Synthetic, MpkiMatchesTarget)
{
    const auto mapper = Mapper();
    for (double mpki : {1.0, 10.0, 50.0}) {
        SyntheticParams params;
        params.mpki = mpki;
        SyntheticTraceSource trace(params, mapper, 0, 4, 7);
        std::uint64_t instructions = 0;
        const int accesses = 20000;
        for (int i = 0; i < accesses; ++i) {
            instructions += trace.Next()->compute_instructions + 1;
        }
        const double measured =
            1000.0 * accesses / static_cast<double>(instructions);
        EXPECT_NEAR(measured, mpki, mpki * 0.1) << "mpki=" << mpki;
    }
}

TEST(Synthetic, WriteFractionMatches)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    params.write_fraction = 0.3;
    SyntheticTraceSource trace(params, mapper, 0, 4, 7);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        writes += trace.Next()->is_write ? 1 : 0;
    }
    EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
}

TEST(Synthetic, DependentFractionMatches)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    params.dependent_fraction = 0.5;
    SyntheticTraceSource trace(params, mapper, 0, 4, 7);
    int dependent = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        dependent += trace.Next()->depends_on_prev ? 1 : 0;
    }
    EXPECT_NEAR(dependent / static_cast<double>(n), 0.5, 0.02);
}

TEST(Synthetic, RowRunsProduceSequentialColumns)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    params.row_run_length = 8;
    params.burst_banks = 1;
    params.bank_switch_prob = 1.0;
    SyntheticTraceSource trace(params, mapper, 0, 4, 7);
    // Count pairs of consecutive accesses that stay in the same row.
    int same_row = 0;
    const int n = 5000;
    auto prev = mapper.Decode(trace.Next()->addr);
    for (int i = 0; i < n; ++i) {
        const auto coords = mapper.Decode(trace.Next()->addr);
        if (coords.SameRow(prev) && coords.column == prev.column + 1) {
            same_row += 1;
        }
        prev = coords;
    }
    // With mean run length 8, ~7/8 of transitions are sequential-in-row.
    EXPECT_GT(same_row / static_cast<double>(n), 0.7);
}

TEST(Synthetic, BurstBanksSpreadAccesses)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    params.burst_banks = 4;
    params.row_run_length = 2;
    SyntheticTraceSource trace(params, mapper, 0, 4, 7);
    std::set<std::uint32_t> banks;
    for (int i = 0; i < 200; ++i) {
        banks.insert(mapper.Decode(trace.Next()->addr).bank);
    }
    EXPECT_GE(banks.size(), 6u);
}

TEST(Synthetic, StickyBanksConcentrateAccesses)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    params.burst_banks = 1;
    params.bank_switch_prob = 0.02;
    params.row_run_length = 4;
    SyntheticTraceSource trace(params, mapper, 0, 4, 7);
    std::map<std::uint32_t, int> bank_counts;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        bank_counts[mapper.Decode(trace.Next()->addr).bank] += 1;
    }
    // The most used bank dominates.
    int max_count = 0;
    for (const auto& [bank, count] : bank_counts) {
        max_count = std::max(max_count, count);
    }
    EXPECT_GT(max_count, n / 2);
}

TEST(Synthetic, ThreadsUseDisjointRowPartitions)
{
    const auto mapper = Mapper();
    SyntheticParams params;
    SyntheticTraceSource t0(params, mapper, 0, 4, 1);
    SyntheticTraceSource t3(params, mapper, 3, 4, 1);
    std::set<std::uint32_t> rows0;
    std::set<std::uint32_t> rows3;
    for (int i = 0; i < 2000; ++i) {
        rows0.insert(mapper.Decode(t0.Next()->addr).row);
        rows3.insert(mapper.Decode(t3.Next()->addr).row);
    }
    for (std::uint32_t row : rows0) {
        EXPECT_EQ(rows3.count(row), 0u);
    }
}

TEST(Synthetic, InvalidParamsRejected)
{
    SyntheticParams params;
    params.mpki = 0.0;
    EXPECT_THROW(params.Validate(), ConfigError);
    params = {};
    params.row_run_length = 0.5;
    EXPECT_THROW(params.Validate(), ConfigError);
    params = {};
    params.write_fraction = 1.0;
    EXPECT_THROW(params.Validate(), ConfigError);
    params = {};
    params.dependent_fraction = 1.5;
    EXPECT_THROW(params.Validate(), ConfigError);
    params = {};
    params.bank_switch_prob = -0.1;
    EXPECT_THROW(params.Validate(), ConfigError);
    params = {};
    params.burst_banks = 0.5;
    EXPECT_THROW(params.Validate(), ConfigError);
}

TEST(SpecProfiles, HasAllTwentyEight)
{
    EXPECT_EQ(SpecProfiles().size(), 28u);
}

TEST(SpecProfiles, LookupByFullAndShortName)
{
    EXPECT_EQ(FindProfile("429.mcf").name, "429.mcf");
    EXPECT_EQ(FindProfile("mcf").name, "429.mcf");
    EXPECT_EQ(FindProfile("matlab").name, "matlab");
    EXPECT_EQ(FindProfile("libquantum").name, "462.libquantum");
    EXPECT_THROW(FindProfile("no-such-benchmark"), ConfigError);
}

TEST(SpecProfiles, CategoriesPartitionTheSet)
{
    std::size_t total = 0;
    for (int category = 0; category < 8; ++category) {
        const auto members = ProfilesInCategory(category);
        EXPECT_FALSE(members.empty()) << "category " << category;
        total += members.size();
    }
    EXPECT_EQ(total, 28u);
}

TEST(SpecProfiles, CategoryBitsMatchPaperCharacteristics)
{
    // Category encoding: bit2 = intensive (MCPI), bit1 = high RB hit,
    // bit0 = high BLP.  Verify the stored paper stats are consistent with
    // the stored category for the threshold structure Table 3 implies.
    for (const auto& profile : SpecProfiles()) {
        const bool intensive = (profile.category & 4) != 0;
        const bool high_rb = (profile.category & 2) != 0;
        const bool high_blp = (profile.category & 1) != 0;
        if (intensive) {
            EXPECT_GE(profile.paper_mcpi, 1.9) << profile.name;
        } else {
            EXPECT_LT(profile.paper_mcpi, 2.0) << profile.name;
        }
        if (high_rb) {
            EXPECT_GE(profile.paper_rb_hit, 0.60) << profile.name;
        } else {
            EXPECT_LT(profile.paper_rb_hit, 0.61) << profile.name;
        }
        if (high_blp) {
            EXPECT_GE(profile.paper_blp, 1.74) << profile.name;
        } else {
            EXPECT_LT(profile.paper_blp, 1.75) << profile.name;
        }
    }
}

TEST(SpecProfiles, SynthParamsValidate)
{
    for (const auto& profile : SpecProfiles()) {
        EXPECT_NO_THROW(profile.synth.Validate()) << profile.name;
        EXPECT_DOUBLE_EQ(profile.synth.mpki, profile.paper_mpki)
            << profile.name;
    }
}

} // namespace
} // namespace parbs
