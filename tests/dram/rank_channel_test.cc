/** @file Tests for rank-level constraints, refresh, and the channel buses. */

#include <gtest/gtest.h>

#include "common/assert.hh"
#include "dram/channel.hh"

namespace parbs::dram {
namespace {

Command
Act(std::uint32_t bank, std::uint32_t row = 0, std::uint32_t rank = 0)
{
    return Command{CommandType::kActivate, rank, bank, row};
}

Command
Read(std::uint32_t bank, std::uint32_t row = 0, std::uint32_t rank = 0)
{
    return Command{CommandType::kRead, rank, bank, row};
}

Command
Write(std::uint32_t bank, std::uint32_t row = 0, std::uint32_t rank = 0)
{
    return Command{CommandType::kWrite, rank, bank, row};
}

class RankTest : public ::testing::Test {
  protected:
    TimingParams timing_;
    Rank rank_{timing_, 8};
};

TEST_F(RankTest, TrrdGatesActivatesAcrossBanks)
{
    rank_.Issue(Act(0), 0);
    EXPECT_FALSE(rank_.CanIssue(Act(1), timing_.tRRD - 1));
    EXPECT_TRUE(rank_.CanIssue(Act(1), timing_.tRRD));
}

TEST_F(RankTest, TfawLimitsFourActivates)
{
    // Four activates spaced at tRRD; the fifth must wait for the tFAW
    // window measured from the first.
    DramCycle t = 0;
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        rank_.Issue(Act(bank), t);
        t += timing_.tRRD;
    }
    EXPECT_FALSE(rank_.CanIssue(Act(4), t));
    EXPECT_FALSE(rank_.CanIssue(Act(4), timing_.tFAW - 1));
    EXPECT_TRUE(rank_.CanIssue(Act(4), timing_.tFAW));
}

TEST_F(RankTest, TwtrGatesReadAfterWrite)
{
    rank_.Issue(Act(0), 0);
    rank_.Issue(Act(1), timing_.tRRD);
    const DramCycle write_at = timing_.tRCD;
    rank_.Issue(Write(0), write_at);
    const DramCycle earliest =
        write_at + timing_.tCWD + timing_.tBURST + timing_.tWTR;
    // Read to a *different* bank still gated by the rank-level tWTR.
    EXPECT_FALSE(rank_.CanIssue(Read(1), earliest - 1));
    EXPECT_TRUE(rank_.CanIssue(Read(1), earliest));
}

TEST_F(RankTest, RefreshDueAfterTrefi)
{
    EXPECT_FALSE(rank_.RefreshDue(timing_.tREFI - 1));
    EXPECT_TRUE(rank_.RefreshDue(timing_.tREFI));
}

TEST_F(RankTest, RefreshRequiresAllBanksClosed)
{
    rank_.Issue(Act(2), 0);
    const DramCycle due = timing_.tREFI;
    EXPECT_FALSE(rank_.CanRefresh(due));
    EXPECT_EQ(rank_.OpenBanks(), std::vector<std::uint32_t>{2});
    rank_.Issue(Command{CommandType::kPrecharge, 0, 2, 0}, timing_.tRAS);
    EXPECT_TRUE(rank_.CanRefresh(due + timing_.tRP));
}

TEST_F(RankTest, RefreshBlocksBanksForTrfc)
{
    const DramCycle due = timing_.tREFI;
    rank_.Issue(Command{CommandType::kRefresh, 0, 0, 0}, due);
    EXPECT_FALSE(rank_.CanIssue(Act(0), due + timing_.tRFC - 1));
    EXPECT_TRUE(rank_.CanIssue(Act(0), due + timing_.tRFC));
    // The next refresh is scheduled one interval later.
    EXPECT_EQ(rank_.next_refresh_due(), 2 * timing_.tREFI);
}

TEST(RankDisabledRefresh, NeverDue)
{
    TimingParams timing;
    timing.tREFI = 0;
    Rank rank(timing, 4);
    EXPECT_FALSE(rank.RefreshDue(1u << 30));
}

class ChannelTest : public ::testing::Test {
  protected:
    TimingParams timing_;
    Geometry geometry_ = [] {
        Geometry g;
        g.channels = 1;
        g.ranks_per_channel = 1;
        g.banks_per_rank = 8;
        g.rows_per_bank = 1024;
        return g;
    }();
    Channel channel_{timing_, geometry_};
};

TEST_F(ChannelTest, ReadReturnsDataAtTclPlusBurst)
{
    channel_.Issue(Act(0, 1), 0);
    const DramCycle read_at = timing_.tRCD;
    const DramCycle done = channel_.Issue(Read(0, 1), read_at);
    EXPECT_EQ(done, read_at + timing_.tCL + timing_.tBURST);
}

TEST_F(ChannelTest, WriteCompletesAtTcwdPlusBurst)
{
    channel_.Issue(Act(0, 1), 0);
    const DramCycle write_at = timing_.tRCD;
    const DramCycle done = channel_.Issue(Write(0, 1), write_at);
    EXPECT_EQ(done, write_at + timing_.tCWD + timing_.tBURST);
}

TEST_F(ChannelTest, DataBusSerializesBurstsAcrossBanks)
{
    channel_.Issue(Act(0, 1), 0);
    channel_.Issue(Act(1, 1), timing_.tRRD);
    const DramCycle first_read = timing_.tRCD;
    channel_.Issue(Read(0, 1), first_read);
    const DramCycle bus_free = first_read + timing_.tCL + timing_.tBURST;
    // A second read whose burst would overlap the first must wait until
    // its data start clears the bus.
    const DramCycle too_early = bus_free - timing_.tCL - 1;
    EXPECT_FALSE(channel_.CanIssue(Read(1, 1), too_early));
    EXPECT_TRUE(channel_.CanIssue(Read(1, 1), bus_free - timing_.tCL));
}

TEST_F(ChannelTest, NonColumnCommandsIgnoreDataBus)
{
    channel_.Issue(Act(0, 1), 0);
    channel_.Issue(Read(0, 1), timing_.tRCD);
    // An activate to another bank can issue while the burst is in flight.
    EXPECT_TRUE(channel_.CanIssue(Act(1, 1), timing_.tRCD + timing_.tRRD));
}

TEST_F(ChannelTest, InvalidGeometryRejected)
{
    Geometry bad = geometry_;
    bad.banks_per_rank = 0;
    EXPECT_THROW(Channel(timing_, bad), ConfigError);

    Geometry not_pow2 = geometry_;
    not_pow2.rows_per_bank = 1000;
    EXPECT_THROW(Channel(timing_, not_pow2), ConfigError);
}

TEST_F(ChannelTest, InvalidTimingRejected)
{
    TimingParams bad;
    bad.tRAS = 2; // Below tRCD.
    EXPECT_THROW(Channel(bad, geometry_), ConfigError);

    TimingParams bad2;
    bad2.tCL = 0;
    EXPECT_THROW(Channel(bad2, geometry_), ConfigError);

    TimingParams bad3;
    bad3.tRFC = bad3.tREFI + 1;
    EXPECT_THROW(Channel(bad3, geometry_), ConfigError);
}

TEST(MultiRankChannel, RanksAreIndependentForActivates)
{
    TimingParams timing;
    Geometry geometry;
    geometry.ranks_per_channel = 2;
    Channel channel(timing, geometry);
    channel.Issue(Act(0, 1, 0), 0);
    // tRRD is per rank: the other rank can activate immediately after.
    EXPECT_TRUE(channel.CanIssue(Act(0, 1, 1), 1));
}

TEST(GeometryHelpers, DerivedQuantities)
{
    Geometry g;
    g.channels = 2;
    g.ranks_per_channel = 1;
    g.banks_per_rank = 8;
    g.row_bytes = 2048;
    g.line_bytes = 64;
    EXPECT_EQ(g.LinesPerRow(), 32u);
    EXPECT_EQ(g.TotalBanks(), 16u);
}

} // namespace
} // namespace parbs::dram
