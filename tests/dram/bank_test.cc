/** @file Tests for the per-bank DRAM state machine and timing constraints. */

#include <gtest/gtest.h>

#include "dram/bank.hh"

namespace parbs::dram {
namespace {

class BankTest : public ::testing::Test {
  protected:
    TimingParams timing_;
    Bank bank_{timing_};

    Command
    Cmd(CommandType type, std::uint32_t row = 0)
    {
        return Command{type, 0, 0, row};
    }
};

TEST_F(BankTest, StartsClosed)
{
    EXPECT_FALSE(bank_.IsOpen());
    EXPECT_EQ(bank_.open_row(), kNoRow);
    EXPECT_EQ(bank_.open_since(), kNeverCycle);
}

TEST_F(BankTest, ClassifyClosedHitConflict)
{
    EXPECT_EQ(bank_.Classify(5), RowBufferState::kClosed);
    bank_.Issue(Cmd(CommandType::kActivate, 5), 0);
    EXPECT_EQ(bank_.Classify(5), RowBufferState::kHit);
    EXPECT_EQ(bank_.Classify(6), RowBufferState::kConflict);
}

TEST_F(BankTest, NextCommandPerState)
{
    EXPECT_EQ(bank_.NextCommandFor(3, false), CommandType::kActivate);
    bank_.Issue(Cmd(CommandType::kActivate, 3), 0);
    EXPECT_EQ(bank_.NextCommandFor(3, false), CommandType::kRead);
    EXPECT_EQ(bank_.NextCommandFor(3, true), CommandType::kWrite);
    EXPECT_EQ(bank_.NextCommandFor(4, false), CommandType::kPrecharge);
}

TEST_F(BankTest, TrcdGatesColumnAfterActivate)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 10);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kRead, 10));
    EXPECT_FALSE(bank_.CanIssue(CommandType::kRead,
                                10 + timing_.tRCD - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kRead, 10 + timing_.tRCD));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kWrite, 10 + timing_.tRCD));
}

TEST_F(BankTest, TrasGatesPrechargeAfterActivate)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kPrecharge, timing_.tRAS - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kPrecharge, timing_.tRAS));
}

TEST_F(BankTest, TrcGatesActivateToActivate)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    bank_.Issue(Cmd(CommandType::kPrecharge), timing_.tRAS);
    // The next activate must respect both tRP (after PRE) and tRC (after
    // the previous ACT); with default timing tRC == tRAS + tRP binds.
    EXPECT_FALSE(bank_.CanIssue(CommandType::kActivate,
                                timing_.tRC() - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kActivate, timing_.tRC()));
}

TEST_F(BankTest, TrpGatesActivateAfterPrecharge)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    const DramCycle pre_at = timing_.tRAS + 10;
    bank_.Issue(Cmd(CommandType::kPrecharge), pre_at);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kActivate,
                                pre_at + timing_.tRP - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kActivate,
                               pre_at + timing_.tRP));
}

TEST_F(BankTest, TrtpGatesPrechargeAfterRead)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    const DramCycle read_at = timing_.tRCD;
    bank_.Issue(Cmd(CommandType::kRead, 1), read_at);
    // tRAS (from ACT) and tRTP (from READ) both apply; tRAS dominates here.
    const DramCycle earliest =
        std::max(timing_.tRAS, read_at + timing_.tRTP);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kPrecharge, earliest - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kPrecharge, earliest));
}

TEST_F(BankTest, WriteRecoveryGatesPrecharge)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    const DramCycle write_at = timing_.tRCD;
    bank_.Issue(Cmd(CommandType::kWrite, 1), write_at);
    const DramCycle earliest = std::max(
        timing_.tRAS,
        write_at + timing_.tCWD + timing_.tBURST + timing_.tWR);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kPrecharge, earliest - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kPrecharge, earliest));
}

TEST_F(BankTest, TccdGatesBackToBackColumns)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    bank_.Issue(Cmd(CommandType::kRead, 1), timing_.tRCD);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kRead,
                                timing_.tRCD + timing_.tCCD - 1));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kRead,
                               timing_.tRCD + timing_.tCCD));
}

TEST_F(BankTest, OpenSinceTracksActivate)
{
    bank_.Issue(Cmd(CommandType::kActivate, 7), 42);
    EXPECT_EQ(bank_.open_since(), 42u);
    bank_.Issue(Cmd(CommandType::kPrecharge), 42 + timing_.tRAS);
    EXPECT_EQ(bank_.open_since(), kNeverCycle);
}

TEST_F(BankTest, BlockUntilDefersEverything)
{
    bank_.BlockUntil(100);
    EXPECT_FALSE(bank_.CanIssue(CommandType::kActivate, 99));
    EXPECT_TRUE(bank_.CanIssue(CommandType::kActivate, 100));
}

TEST_F(BankTest, ActivateOnOpenBankAborts)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    EXPECT_DEATH(bank_.Issue(Cmd(CommandType::kActivate, 2),
                             timing_.tRC()),
                 "open row");
}

TEST_F(BankTest, ReadWrongRowAborts)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    EXPECT_DEATH(bank_.Issue(Cmd(CommandType::kRead, 2), timing_.tRCD),
                 "matching open row");
}

TEST_F(BankTest, PrechargeClosedBankAborts)
{
    EXPECT_DEATH(bank_.Issue(Cmd(CommandType::kPrecharge), 0),
                 "already-closed");
}

TEST_F(BankTest, EarlyIssueAborts)
{
    bank_.Issue(Cmd(CommandType::kActivate, 1), 0);
    EXPECT_DEATH(bank_.Issue(Cmd(CommandType::kRead, 1),
                             timing_.tRCD - 1),
                 "timing violation");
}

TEST(BankLatency, PaperTableTwoLatencies)
{
    // Table 2 / Section 3: hit = tCL, closed = tRCD + tCL,
    // conflict = tRP + tRCD + tCL (15/30/45 ns at DDR2-800: 6/12/18).
    TimingParams t;
    EXPECT_EQ(t.HitLatency(), 6u);
    EXPECT_EQ(t.ClosedLatency(), 12u);
    EXPECT_EQ(t.ConflictLatency(), 18u);
}

} // namespace
} // namespace parbs::dram
