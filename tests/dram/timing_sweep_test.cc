/** @file Parameterized sweeps over DRAM timing values: the bank/rank state
 *  machines must honour whatever constraints they are configured with, not
 *  just the DDR2-800 defaults. */

#include <gtest/gtest.h>

#include "dram/channel.hh"

namespace parbs::dram {
namespace {

/** (tCL, tRCD, tRP, tRAS) tuples covering slow and fast devices. */
using TimingTuple =
    std::tuple<DramCycle, DramCycle, DramCycle, DramCycle>;

class TimingSweep : public ::testing::TestWithParam<TimingTuple> {
  protected:
    TimingParams
    Params() const
    {
        TimingParams t;
        std::tie(t.tCL, t.tRCD, t.tRP, t.tRAS) = GetParam();
        return t;
    }
};

INSTANTIATE_TEST_SUITE_P(
    Devices, TimingSweep,
    ::testing::Values(TimingTuple{3, 3, 3, 9},    // fast DDR-ish
                      TimingTuple{6, 6, 6, 18},   // DDR2-800 baseline
                      TimingTuple{7, 7, 7, 21},   // DDR2-1066-ish
                      TimingTuple{11, 11, 11, 28} // DDR3-1600-ish
                      ));

TEST_P(TimingSweep, ReadLatencyFollowsConfiguredValues)
{
    const TimingParams t = Params();
    Bank bank(t);
    bank.Issue({CommandType::kActivate, 0, 0, 1}, 0);
    EXPECT_FALSE(bank.CanIssue(CommandType::kRead, t.tRCD - 1));
    EXPECT_TRUE(bank.CanIssue(CommandType::kRead, t.tRCD));
}

TEST_P(TimingSweep, RowCycleFollowsConfiguredValues)
{
    const TimingParams t = Params();
    Bank bank(t);
    bank.Issue({CommandType::kActivate, 0, 0, 1}, 0);
    bank.Issue({CommandType::kPrecharge, 0, 0, 0}, t.tRAS);
    EXPECT_FALSE(bank.CanIssue(CommandType::kActivate, t.tRC() - 1));
    EXPECT_TRUE(bank.CanIssue(CommandType::kActivate, t.tRC()));
}

TEST_P(TimingSweep, DerivedLatenciesAreConsistent)
{
    const TimingParams t = Params();
    EXPECT_EQ(t.HitLatency(), t.tCL);
    EXPECT_EQ(t.ClosedLatency(), t.tRCD + t.tCL);
    EXPECT_EQ(t.ConflictLatency(), t.tRP + t.tRCD + t.tCL);
    EXPECT_LT(t.HitLatency(), t.ClosedLatency());
    EXPECT_LT(t.ClosedLatency(), t.ConflictLatency());
    EXPECT_NO_THROW(t.Validate());
}

TEST_P(TimingSweep, EndToEndRequestLegality)
{
    // Drive a full conflict sequence through a channel and check every
    // command issues exactly at its earliest legal cycle.
    const TimingParams t = Params();
    Geometry geometry;
    geometry.rows_per_bank = 1024;
    Channel channel(t, geometry);

    channel.Issue({CommandType::kActivate, 0, 0, 1}, 0);
    const DramCycle read_at = t.tRCD;
    ASSERT_TRUE(channel.CanIssue({CommandType::kRead, 0, 0, 1}, read_at));
    channel.Issue({CommandType::kRead, 0, 0, 1}, read_at);

    const DramCycle pre_at = std::max(t.tRAS, read_at + t.tRTP);
    ASSERT_FALSE(
        channel.CanIssue({CommandType::kPrecharge, 0, 0, 0}, pre_at - 1));
    channel.Issue({CommandType::kPrecharge, 0, 0, 0}, pre_at);

    const DramCycle act_at = std::max(pre_at + t.tRP, t.tRC());
    ASSERT_FALSE(
        channel.CanIssue({CommandType::kActivate, 0, 0, 2}, act_at - 1));
    channel.Issue({CommandType::kActivate, 0, 0, 2}, act_at);
    SUCCEED();
}

/** Sweep the CPU:DRAM ratio used by the round-trip accounting. */
class BurstSweep : public ::testing::TestWithParam<DramCycle> {};

INSTANTIATE_TEST_SUITE_P(Bursts, BurstSweep,
                         ::testing::Values(2u, 4u, 8u));

TEST_P(BurstSweep, BusOccupancyScalesWithBurstLength)
{
    TimingParams t;
    t.tBURST = GetParam();
    Geometry geometry;
    geometry.rows_per_bank = 1024;
    Channel channel(t, geometry);
    channel.Issue({CommandType::kActivate, 0, 0, 1}, 0);
    channel.Issue({CommandType::kActivate, 0, 1, 1}, t.tRRD);
    const DramCycle first = t.tRCD;
    const DramCycle done = channel.Issue({CommandType::kRead, 0, 0, 1},
                                         first);
    EXPECT_EQ(done, first + t.tCL + t.tBURST);
    // The second read's burst may start exactly when the first ends — but
    // it must also respect its own bank's tRCD (binding for short bursts).
    const DramCycle second_ok =
        std::max(done - t.tCL, t.tRRD + t.tRCD);
    EXPECT_FALSE(
        channel.CanIssue({CommandType::kRead, 0, 1, 1}, second_ok - 1));
    EXPECT_TRUE(channel.CanIssue({CommandType::kRead, 0, 1, 1}, second_ok));
}

} // namespace
} // namespace parbs::dram
