/** @file Tests for the address mapping, including the XOR bank permutation. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "dram/address_mapper.hh"

namespace parbs::dram {
namespace {

Geometry
BaselineGeometry(std::uint32_t channels = 1)
{
    Geometry g;
    g.channels = channels;
    g.ranks_per_channel = 1;
    g.banks_per_rank = 8;
    g.rows_per_bank = 16384;
    g.row_bytes = 2048;
    g.line_bytes = 64;
    return g;
}

TEST(AddressMapper, DecodeEncodeRoundTripsAddresses)
{
    for (bool hash : {false, true}) {
        AddressMapper mapper(BaselineGeometry(2), hash);
        Rng rng(99);
        for (int i = 0; i < 2000; ++i) {
            // Line-aligned addresses within the geometry's range
            // (6 offset + 5 column + 1 channel + 3 bank + 14 row bits).
            const Addr addr = (rng.Next64() % (1ull << 29)) & ~Addr{63};
            const DecodedAddr coords = mapper.Decode(addr);
            EXPECT_EQ(mapper.Encode(coords), addr) << "hash=" << hash;
        }
    }
}

TEST(AddressMapper, EncodeDecodeRoundTripsCoordinates)
{
    for (bool hash : {false, true}) {
        AddressMapper mapper(BaselineGeometry(4), hash);
        Rng rng(7);
        for (int i = 0; i < 2000; ++i) {
            DecodedAddr coords;
            coords.channel = static_cast<std::uint32_t>(rng.NextBelow(4));
            coords.bank = static_cast<std::uint32_t>(rng.NextBelow(8));
            coords.row = static_cast<std::uint32_t>(rng.NextBelow(16384));
            coords.column = static_cast<std::uint32_t>(rng.NextBelow(32));
            EXPECT_EQ(mapper.Decode(mapper.Encode(coords)), coords);
        }
    }
}

TEST(AddressMapper, ConsecutiveLinesFillARow)
{
    AddressMapper mapper(BaselineGeometry(), false);
    const DecodedAddr first = mapper.Decode(0);
    for (Addr line = 1; line < 32; ++line) {
        const DecodedAddr coords = mapper.Decode(line * 64);
        EXPECT_EQ(coords.row, first.row);
        EXPECT_EQ(coords.bank, first.bank);
        EXPECT_EQ(coords.column, line);
    }
}

TEST(AddressMapper, PlainMappingRowStrideHitsSameBank)
{
    // Without the XOR hash, a row-sized stride pounds one bank.
    AddressMapper mapper(BaselineGeometry(), false);
    const Addr row_stride = 2048ull * 8; // row_bytes * banks
    const std::uint32_t bank0 = mapper.Decode(0).bank;
    for (int i = 1; i < 16; ++i) {
        EXPECT_EQ(mapper.Decode(i * row_stride).bank, bank0);
    }
}

TEST(AddressMapper, XorHashSpreadsRowStride)
{
    // With the XOR permutation the same stride touches many banks.
    AddressMapper mapper(BaselineGeometry(), true);
    const Addr row_stride = 2048ull * 8;
    std::set<std::uint32_t> banks;
    for (int i = 0; i < 16; ++i) {
        banks.insert(mapper.Decode(i * row_stride).bank);
    }
    EXPECT_GE(banks.size(), 4u);
}

TEST(AddressMapper, XorHashIsAPermutationWithinRow)
{
    // For a fixed row, the bank mapping must remain a bijection.
    AddressMapper mapper(BaselineGeometry(), true);
    for (std::uint32_t row : {0u, 1u, 5u, 16383u}) {
        std::set<std::uint32_t> banks;
        for (std::uint32_t bank = 0; bank < 8; ++bank) {
            DecodedAddr coords;
            coords.bank = bank;
            coords.row = row;
            banks.insert(mapper.Decode(mapper.Encode(coords)).bank);
        }
        EXPECT_EQ(banks.size(), 8u);
    }
}

TEST(AddressMapper, SameRowHelper)
{
    DecodedAddr a{0, 0, 3, 7, 1};
    DecodedAddr b{0, 0, 3, 7, 30};
    DecodedAddr c{0, 0, 3, 8, 1};
    EXPECT_TRUE(a.SameRow(b));
    EXPECT_FALSE(a.SameRow(c));
}

TEST(AddressMapper, OutOfRangeEncodeAborts)
{
    AddressMapper mapper(BaselineGeometry(), true);
    DecodedAddr coords;
    coords.bank = 8; // Only 8 banks: 0..7.
    EXPECT_DEATH(mapper.Encode(coords), "out of range");
}

TEST(AddressMapper, SingleChannelDecodesChannelZero)
{
    AddressMapper mapper(BaselineGeometry(1), true);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const Addr addr = rng.Next64() % (1ull << 30);
        EXPECT_EQ(mapper.Decode(addr).channel, 0u);
    }
}

TEST(AddressMapper, ChannelsCoverAllValues)
{
    AddressMapper mapper(BaselineGeometry(4), true);
    std::set<std::uint32_t> channels;
    for (Addr line = 0; line < 1024; ++line) {
        channels.insert(mapper.Decode(line * 64).channel);
    }
    EXPECT_EQ(channels.size(), 4u);
}

} // namespace
} // namespace parbs::dram
