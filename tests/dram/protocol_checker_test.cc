/** @file Tests for the independent DRAM protocol checker (shadow model). */

#include <gtest/gtest.h>

#include <string>

#include "dram/protocol_checker.hh"
#include "sched/factory.hh"
#include "test_util.hh"

namespace parbs::dram {
namespace {

TimingParams
T()
{
    return TimingParams{};
}

ProtocolChecker
RecordingChecker()
{
    return ProtocolChecker(T(), 1, 8, ProtocolChecker::Mode::kRecord);
}

Command
Act(std::uint32_t bank, std::uint32_t row)
{
    return Command{CommandType::kActivate, 0, bank, row};
}

Command
Pre(std::uint32_t bank)
{
    return Command{CommandType::kPrecharge, 0, bank, 0};
}

Command
Rd(std::uint32_t bank, std::uint32_t row)
{
    return Command{CommandType::kRead, 0, bank, row};
}

Command
Wr(std::uint32_t bank, std::uint32_t row)
{
    return Command{CommandType::kWrite, 0, bank, row};
}

TEST(ProtocolChecker, AcceptsLegalSequence)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    // ACT -> RD -> PRE -> ACT, all at their legal minimum distances.
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Rd(0, 5), t.tRCD);
    checker.Observe(Pre(0), t.tRAS);
    checker.Observe(Act(0, 6), t.tRAS + t.tRP);
    // Parallel activity in another bank respecting tRRD.
    checker.Observe(Act(1, 9), t.tRAS + t.tRP + t.tRRD);
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_EQ(checker.commands_checked(), 5u);
}

TEST(ProtocolChecker, CatchesActivateToOpenBank)
{
    ProtocolChecker checker = RecordingChecker();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Act(0, 6), 100);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "ACT-open-row");
}

TEST(ProtocolChecker, CatchesShortTrp)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    // Precharge late enough that tRC is satisfied and only tRP binds.
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Rd(0, 5), t.tRCD);
    checker.Observe(Pre(0), t.tRC() + 6);
    checker.Observe(Act(0, 6), t.tRC() + 6 + t.tRP - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRP");
}

TEST(ProtocolChecker, CatchesShortTras)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Pre(0), t.tRAS - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRAS");
}

TEST(ProtocolChecker, CatchesShortTrcd)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Rd(0, 5), t.tRCD - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRCD");
}

TEST(ProtocolChecker, CatchesRowMismatchAndClosedColumn)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Rd(0, 5), t.tWTR); // nothing open
    checker.Observe(Act(1, 5), t.tWTR + 10);
    checker.Observe(Rd(1, 6), t.tWTR + 30); // wrong row
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_EQ(checker.violations()[0].rule, "column-closed");
    EXPECT_EQ(checker.violations()[1].rule, "row-mismatch");
}

TEST(ProtocolChecker, CatchesShortTrrd)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Act(1, 5), t.tRRD - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRRD");
}

TEST(ProtocolChecker, CatchesFiveActivatesInFawWindow)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    // Four ACTs at the legal tRRD pace, fifth inside the tFAW window.
    DramCycle now = 0;
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        checker.Observe(Act(bank, 1), now);
        now += t.tRRD;
    }
    ASSERT_TRUE(checker.violations().empty());
    ASSERT_LT(now, t.tFAW); // the fifth would be inside the window
    checker.Observe(Act(4, 1), now);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tFAW");
}

TEST(ProtocolChecker, CatchesShortWriteRecovery)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Wr(0, 5), t.tRCD);
    const DramCycle recovery_end = t.tRCD + t.tCWD + t.tBURST + t.tWR;
    checker.Observe(Pre(0), recovery_end - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tWR");
}

TEST(ProtocolChecker, CatchesShortWriteToReadTurnaround)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Act(1, 7), t.tRRD);
    const DramCycle wr_at = 2 * t.tRCD;
    checker.Observe(Wr(0, 5), wr_at);
    // READ in the other bank before the rank-wide turnaround completes.
    const DramCycle burst_end = wr_at + t.tCWD + t.tBURST;
    checker.Observe(Rd(1, 7), burst_end + t.tWTR - 1);
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tWTR");
}

TEST(ProtocolChecker, CatchesShortReadToPrecharge)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    // Late read so tRTP (not tRAS) is the binding constraint.
    const DramCycle rd_at = t.tRAS + 10;
    checker.Observe(Rd(0, 5), rd_at);
    checker.Observe(Pre(0), rd_at + t.tRTP - 1);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRTP");
}

TEST(ProtocolChecker, CatchesDataBusOverlap)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Act(1, 7), t.tRRD);
    const DramCycle first_rd = 2 * t.tRCD;
    checker.Observe(Rd(0, 5), first_rd);
    // Second read whose data would overlap the first burst.
    checker.Observe(Rd(1, 7), first_rd + t.tBURST - 1);
    ASSERT_GE(checker.violations().size(), 1u);
    bool found = false;
    for (const ProtocolViolation& violation : checker.violations()) {
        found = found || violation.rule == "data-bus";
    }
    EXPECT_TRUE(found);
}

TEST(ProtocolChecker, CatchesPrechargeOfClosedBank)
{
    ProtocolChecker checker = RecordingChecker();
    checker.Observe(Pre(3), 0);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "PRE-closed");
}

TEST(ProtocolChecker, CatchesRefreshWithOpenBank)
{
    ProtocolChecker checker = RecordingChecker();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Command{CommandType::kRefresh, 0, 0, 0}, 100);
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "REF-open-bank");
}

TEST(ProtocolChecker, CatchesCommandDuringRefresh)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Command{CommandType::kRefresh, 0, 0, 0}, 0);
    checker.Observe(Act(0, 5), t.tRFC - 1);
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tRFC");
}

TEST(ProtocolChecker, CatchesRefreshStarvation)
{
    ProtocolChecker checker = RecordingChecker();
    const TimingParams t = T();
    checker.Observe(Act(0, 5), 9 * t.tREFI + 1);
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "tREFI");
}

TEST(ProtocolChecker, CatchesOutOfRangeOperands)
{
    ProtocolChecker checker = RecordingChecker();
    checker.Observe(Act(0, 5), 0);
    checker.Observe(Command{CommandType::kActivate, 7, 0, 5}, 100);
    checker.Observe(Command{CommandType::kActivate, 0, 99, 5}, 200);
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_EQ(checker.violations()[0].rule, "rank-range");
    EXPECT_EQ(checker.violations()[1].rule, "bank-range");
}

TEST(ProtocolChecker, ThrowModeRaisesWithContext)
{
    ProtocolChecker checker(T(), 1, 8, ProtocolChecker::Mode::kThrow);
    checker.Observe(Act(0, 5), 0);
    try {
        checker.Observe(Act(0, 6), 100);
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& error) {
        const std::string what = error.what();
        // The report names the rule, the shadow state, and the history.
        EXPECT_NE(what.find("ACT-open-row"), std::string::npos) << what;
        EXPECT_NE(what.find("shadow state"), std::string::npos) << what;
        EXPECT_NE(what.find("commands (oldest first)"), std::string::npos)
            << what;
    }
    // The violation is recorded even in throw mode.
    EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(ProtocolChecker, TimeOrderViolation)
{
    ProtocolChecker checker = RecordingChecker();
    checker.Observe(Act(0, 5), 100);
    checker.Observe(Pre(0), 99);
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "time-order");
}

// --- Integration: the real controller under the checker ------------------

TEST(ProtocolChecker, ControllerWorkloadIsViolationFree)
{
    // Drive the full controller (with refresh) through a mixed workload:
    // the shadow model must agree with the FSMs on every command.
    ControllerConfig config;
    config.enable_refresh = true;
    config.protocol_check = true;
    SchedulerConfig sched;
    sched.kind = SchedulerKind::kParBs;
    test::ControllerHarness harness(MakeScheduler(sched), 4, config);
    for (std::uint32_t i = 0; i < 200; ++i) {
        harness.Enqueue(i % 4, i % 8, (i * 7) % 32, i % 16,
                        /*is_write=*/(i % 5) == 0);
        if (i % 3 == 0) {
            harness.Tick(5);
        }
    }
    harness.RunUntilIdle();
    const dram::ProtocolChecker* checker =
        harness.controller().protocol_checker();
    ASSERT_NE(checker, nullptr);
    EXPECT_TRUE(checker->violations().empty());
    // Every request needs at least its column command.
    EXPECT_GE(checker->commands_checked(), 200u);
}

TEST(ProtocolChecker, SeededTrpCorruptionIsCaught)
{
    // The fault-injection seam: device FSMs run with a skipped tRP while
    // the checker validates against the true reference timing.
    dram::TimingParams corrupted;
    corrupted.tRP = 2;
    test::ControllerHarness harness(
        MakeScheduler(SchedulerConfig{}), 2,
        test::ControllerHarness::DefaultConfig(), corrupted);
    harness.controller().EnableProtocolCheck(dram::TimingParams{});
    EXPECT_THROW(
        {
            for (int i = 0; i < 12; ++i) {
                harness.Enqueue(0, 2, (i % 2) != 0 ? 5 : 9);
            }
            harness.RunUntilIdle();
        },
        dram::ProtocolError);
}

} // namespace
} // namespace parbs::dram
